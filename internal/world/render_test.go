package world

import (
	"math"
	"math/rand"
	"testing"

	"dive/internal/geom"
)

func TestTexturesDeterministic(t *testing.T) {
	nt := NoiseTexture{Base: 100, Amplitude: 40, Scale: 2, Seed: 7}
	if nt.Sample(1.5, 2.5) != nt.Sample(1.5, 2.5) {
		t.Error("NoiseTexture not deterministic")
	}
	st := StripedTexture{Base: 120, Amplitude: 30, Period: 2, Seed: 3}
	if st.Sample(0.3, 0.9) != st.Sample(0.3, 0.9) {
		t.Error("StripedTexture not deterministic")
	}
	rt := RoadTexture{Seed: 1, LaneWidth: 3.5, DashLen: 2, DashPeriod: 6, HalfWidth: 7.5}
	if rt.Sample(0.0, 1.0) != rt.Sample(0.0, 1.0) {
		t.Error("RoadTexture not deterministic")
	}
}

func TestTexturesHaveContrast(t *testing.T) {
	// Block matching needs gradients; verify each texture actually varies.
	texs := []Texture{
		NoiseTexture{Base: 100, Amplitude: 40, Scale: 2, Seed: 7},
		StripedTexture{Base: 120, Amplitude: 30, Period: 2, Seed: 3},
		RoadTexture{Seed: 1, LaneWidth: 3.5, DashLen: 2, DashPeriod: 6, HalfWidth: 7.5},
	}
	for ti, tex := range texs {
		lo, hi := 255, 0
		for i := 0; i < 400; i++ {
			v := int(tex.Sample(float64(i)*0.13, float64(i)*0.07))
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		if hi-lo < 20 {
			t.Errorf("texture %d has contrast %d, too flat", ti, hi-lo)
		}
	}
}

func TestValueNoiseRange(t *testing.T) {
	for i := 0; i < 1000; i++ {
		v := valueNoise(float64(i)*0.37, float64(i)*0.61, 99)
		if v < 0 || v >= 1.0000001 {
			t.Fatalf("valueNoise out of range: %v", v)
		}
	}
	// Continuity: nearby samples are close.
	a := valueNoise(5.5, 5.5, 1)
	b := valueNoise(5.501, 5.5, 1)
	if math.Abs(a-b) > 0.05 {
		t.Errorf("valueNoise discontinuous: %v vs %v", a, b)
	}
}

func TestBillboardMotion(t *testing.T) {
	actor := NewActor(1, ClassCar, geom.Vec3{Z: 10}, geom.Vec3{Z: 5}, 2, 1.5, 4, NoiseTexture{Base: 100, Amplitude: 30, Scale: 2}, 2, 4)
	if p := actor.Pos(1); math.Abs(p.Z-15) > 1e-9 {
		t.Errorf("pos(1) = %v", p)
	}
	// During the stop window the actor holds position.
	if p := actor.Pos(3); math.Abs(p.Z-20) > 1e-9 {
		t.Errorf("pos during stop = %v, want z=20", p)
	}
	if actor.Moving(3) {
		t.Error("actor should be stopped at t=3")
	}
	// After resume it moves again.
	if p := actor.Pos(5); math.Abs(p.Z-25) > 1e-9 {
		t.Errorf("pos after resume = %v, want z=25", p)
	}
	if !actor.Moving(5) {
		t.Error("actor should move at t=5")
	}
	static := NewStatic(2, ClassCar, geom.Vec3{Z: 5}, 2, 1.5, 4, NoiseTexture{})
	if static.Moving(1) {
		t.Error("static object reported moving")
	}
}

func TestBillboardAxes(t *testing.T) {
	b := NewStatic(1, ClassCar, geom.Vec3{Z: 20}, 2, 1.5, 4, NoiseTexture{})
	right, normal := b.Axes(0, geom.Vec3{})
	// Normal points from object toward camera (−z), horizontal.
	if math.Abs(normal.Z+1) > 1e-9 || math.Abs(normal.Y) > 1e-9 {
		t.Errorf("normal = %v", normal)
	}
	if math.Abs(right.Norm()-1) > 1e-9 {
		t.Errorf("right not unit: %v", right)
	}
	if math.Abs(right.Dot(normal)) > 1e-9 {
		t.Error("axes not orthogonal")
	}
	// Degenerate: camera exactly above the object.
	_, n2 := b.Axes(0, geom.Vec3{Z: 20, Y: -5})
	if n2.Norm() == 0 {
		t.Error("degenerate axes should fall back to a valid normal")
	}
}

func TestRenderProducesGroundSkyAndObjects(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	p := NuScenesLike()
	traj := p.Trajectory(rng)
	scene := buildScene(p, traj, rng)
	cam := NewCamera(p.focal(), p.W, p.H)
	pose := traj.At(0)
	cam.SetPose(pose.Pos, pose.Yaw, pose.Pitch)
	rdr := NewRenderer(scene)
	frame, gts := rdr.Render(cam, 0, 42)
	if frame.W != p.W || frame.H != p.H {
		t.Fatalf("frame size %dx%d", frame.W, frame.H)
	}
	// Sky at top should be bright, road at bottom darker.
	top := float64(frame.At(p.W/2, 2))
	bottom := float64(frame.At(p.W/2, p.H-3))
	if top < 150 {
		t.Errorf("sky luma = %v, want bright", top)
	}
	if bottom > top {
		t.Errorf("road (%v) brighter than sky (%v)", bottom, top)
	}
	if len(gts) == 0 {
		t.Fatal("no ground-truth boxes in the opening frame")
	}
	for _, gt := range gts {
		if gt.Box.Empty() {
			t.Error("empty GT box")
		}
		if gt.Box.MinX < 0 || gt.Box.MaxX > p.W || gt.Box.MinY < 0 || gt.Box.MaxY > p.H {
			t.Errorf("GT box out of frame: %+v", gt.Box)
		}
		if gt.Class != ClassCar && gt.Class != ClassPedestrian {
			t.Errorf("GT class %v should never be structure", gt.Class)
		}
		if gt.Visible < rdr.MinVisible || gt.Visible > 1 {
			t.Errorf("GT visibility %v out of range", gt.Visible)
		}
	}
}

func TestRenderDeterminism(t *testing.T) {
	a := GenerateClip(KITTILike(), 5)
	b := GenerateClip(KITTILike(), 5)
	if a.NumFrames() != b.NumFrames() {
		t.Fatal("frame count differs")
	}
	for i := range a.Frames {
		for j := range a.Frames[i].Pix {
			if a.Frames[i].Pix[j] != b.Frames[i].Pix[j] {
				t.Fatalf("frame %d differs at pixel %d", i, j)
			}
		}
		if len(a.GT[i]) != len(b.GT[i]) {
			t.Fatalf("GT count differs at frame %d", i)
		}
	}
}

func TestOcclusionReducesVisibility(t *testing.T) {
	// Place a car behind a building: it must be dropped or reported with
	// low visibility.
	scene := &Scene{
		GroundY:   GroundPlaneY,
		GroundTex: RoadTexture{Seed: 1, LaneWidth: 3.5, DashLen: 2, DashPeriod: 6, HalfWidth: 7.5},
		Sky:       SkyTexture{Seed: 2},
	}
	car := NewStatic(1, ClassCar, geom.Vec3{Y: GroundPlaneY, Z: 40}, 2, 1.5, 4,
		NoiseTexture{Base: 100, Amplitude: 40, Scale: 2, Seed: 3})
	wall := NewStatic(2, ClassStructure, geom.Vec3{Y: GroundPlaneY, Z: 20}, 12, 8, 1,
		StripedTexture{Base: 120, Amplitude: 30, Period: 2, Seed: 4})
	scene.Objects = []*Billboard{car, wall}
	cam := NewCamera(250, 320, 192)
	rdr := NewRenderer(scene)
	_, gts := rdr.Render(cam, 0, 7)
	for _, gt := range gts {
		if gt.ObjectID == 1 {
			t.Errorf("fully occluded car still annotated (visible=%v)", gt.Visible)
		}
	}
	// Without the wall the car is annotated.
	scene.Objects = []*Billboard{car}
	_, gts = rdr.Render(cam, 0, 7)
	found := false
	for _, gt := range gts {
		if gt.ObjectID == 1 && gt.Visible > 0.8 {
			found = true
		}
	}
	if !found {
		t.Error("unoccluded car missing from ground truth")
	}
}

func TestGenerateClipShape(t *testing.T) {
	p := RobotCarLike()
	p.ClipDuration = 1
	clip := GenerateClip(p, 9)
	if clip.NumFrames() != 16 {
		t.Errorf("frames = %d, want 16 (1s at 16 FPS)", clip.NumFrames())
	}
	if clip.FrameInterval() != 1.0/16 {
		t.Errorf("interval = %v", clip.FrameInterval())
	}
	if len(clip.GT) != clip.NumFrames() || len(clip.Poses) != clip.NumFrames() {
		t.Error("GT/pose length mismatch")
	}
	if clip.IMU != nil {
		t.Error("RobotCar profile should not generate IMU")
	}
	k := KITTILike()
	k.ClipDuration = 1
	kc := GenerateClip(k, 9)
	if len(kc.IMU) != 100 {
		t.Errorf("IMU samples = %d, want 100", len(kc.IMU))
	}
}

func TestTrajectoryStates(t *testing.T) {
	tr := &EgoTrajectory{Segments: []TrajectorySegment{
		{Duration: 2, Speed: 0},
		{Duration: 2, Speed: 10},
		{Duration: 2, Speed: 10, YawRate: 0.2},
	}}
	if s := tr.At(1).State; s != MotionStatic {
		t.Errorf("t=1 state = %v", s)
	}
	if s := tr.At(3).State; s != MotionStraight {
		t.Errorf("t=3 state = %v", s)
	}
	if s := tr.At(5).State; s != MotionTurning {
		t.Errorf("t=5 state = %v", s)
	}
	if tr.Duration() != 6 {
		t.Errorf("duration = %v", tr.Duration())
	}
	// Past the end the pose freezes.
	p1, p2 := tr.At(6), tr.At(8)
	if p1.Pos.Sub(p2.Pos).Norm() > 1e-9 {
		t.Error("pose should freeze after trajectory end")
	}
}

func TestTrajectoryIntegrationTurn(t *testing.T) {
	// A quarter-circle left turn: 90° at constant speed.
	w := -math.Pi / 2 / 4 // -90° over 4 s
	tr := &EgoTrajectory{Segments: []TrajectorySegment{{Duration: 4, Speed: 5, YawRate: w}}}
	end := tr.At(4)
	if math.Abs(end.Yaw-(-math.Pi/2)) > 1e-9 {
		t.Errorf("final yaw = %v", end.Yaw)
	}
	// Radius r = v/|ω| = 5/(π/8) ≈ 12.73; end displacement |(r, r)|.
	r := 5 / math.Abs(w)
	if math.Abs(end.Pos.X+r) > 1e-6 || math.Abs(end.Pos.Z-r) > 1e-6 {
		t.Errorf("end pos = %v, want (-%v, 0, %v)", end.Pos, r, r)
	}
}

func TestIMUSampling(t *testing.T) {
	tr := &EgoTrajectory{Segments: []TrajectorySegment{{Duration: 2, Speed: 10, YawRate: 0.1}}}
	rng := rand.New(rand.NewSource(4))
	samples := tr.SampleIMU(2, 100, 0.001, rng)
	if len(samples) != 200 {
		t.Fatalf("samples = %d", len(samples))
	}
	var errSum float64
	for _, s := range samples {
		if s.TrueGY != 0.1 {
			t.Fatalf("true yaw rate = %v", s.TrueGY)
		}
		errSum += math.Abs(s.GyroY - s.TrueGY)
	}
	if mean := errSum / 200; mean > 0.005 {
		t.Errorf("IMU noise too large: %v", mean)
	}
}

func TestMotionStateString(t *testing.T) {
	if MotionStatic.String() != "static" || MotionStraight.String() != "straight" ||
		MotionTurning.String() != "turning" || MotionState(0).String() != "unknown" {
		t.Error("MotionState.String wrong")
	}
	if ClassCar.String() != "car" || ClassPedestrian.String() != "pedestrian" ||
		ClassStructure.String() != "structure" || Class(0).String() != "unknown" {
		t.Error("Class.String wrong")
	}
}

func TestNightProfileRendersDarker(t *testing.T) {
	day := NuScenesLike()
	day.ClipDuration = 0.25
	night := NuScenesNightLike()
	night.ClipDuration = 0.25
	dc := GenerateClip(day, 5)
	nc := GenerateClip(night, 5)
	meanLuma := func(p []uint8) float64 {
		s := 0.0
		for _, v := range p {
			s += float64(v)
		}
		return s / float64(len(p))
	}
	dMean := meanLuma(dc.Frames[0].Pix)
	nMean := meanLuma(nc.Frames[0].Pix)
	if nMean >= dMean*0.5 {
		t.Errorf("night mean luma %v not clearly below day %v", nMean, dMean)
	}
	// Contrast (std dev) collapses at night even though noise is boosted.
	std := func(p []uint8) float64 {
		m := meanLuma(p)
		s := 0.0
		for _, v := range p {
			d := float64(v) - m
			s += d * d
		}
		return s / float64(len(p))
	}
	if std(nc.Frames[0].Pix) >= std(dc.Frames[0].Pix)*0.3 {
		t.Errorf("night contrast %v not clearly below day %v",
			std(nc.Frames[0].Pix), std(dc.Frames[0].Pix))
	}
	// Same scene geometry: ground truth object counts match.
	if len(nc.GT[0]) > len(dc.GT[0]) {
		t.Errorf("night clip has more GT (%d) than day (%d)?", len(nc.GT[0]), len(dc.GT[0]))
	}
}

func TestBillboardDegenerateStopWindow(t *testing.T) {
	// resume before stopAt: the actor pauses at stopAt and the (invalid)
	// resume in the past must not produce time travel.
	a := NewActor(1, ClassCar, geom.Vec3{}, geom.Vec3{Z: 2}, 2, 1.5, 4, NoiseTexture{}, 3, 1)
	p2 := a.Pos(2)
	p5 := a.Pos(5)
	if p5.Z < p2.Z {
		t.Errorf("position went backwards: %v then %v", p2, p5)
	}
}

func TestProfileFocalMatchesFOV(t *testing.T) {
	p := NuScenesLike()
	f := p.focal()
	// Reconstruct the FOV from the focal length.
	fov := 2 * math.Atan(float64(p.W)/2/f) * 180 / math.Pi
	if math.Abs(fov-p.FOVDeg) > 0.01 {
		t.Errorf("focal %v gives FOV %v, want %v", f, fov, p.FOVDeg)
	}
}

func TestObjectsNearCulls(t *testing.T) {
	scene := &Scene{GroundY: GroundPlaneY, GroundTex: RoadTexture{HalfWidth: 7.5, LaneWidth: 3.5, DashLen: 2, DashPeriod: 6}}
	near := NewStatic(1, ClassCar, geom.Vec3{Z: 10}, 2, 1.5, 4, NoiseTexture{})
	far := NewStatic(2, ClassCar, geom.Vec3{Z: 500}, 2, 1.5, 4, NoiseTexture{})
	scene.Objects = []*Billboard{near, far}
	got := scene.ObjectsNear(geom.Vec3{}, 0, 100)
	if len(got) != 1 || got[0].ID != 1 {
		t.Errorf("culling returned %d objects", len(got))
	}
}

func TestGenerateDataset(t *testing.T) {
	p := KITTILike()
	p.ClipDuration = 0.5
	clips := GenerateDataset(p, 100, 3)
	if len(clips) != 3 {
		t.Fatalf("clips = %d", len(clips))
	}
	seen := map[int64]bool{}
	for _, c := range clips {
		if seen[c.Seed] {
			t.Error("duplicate clip seed")
		}
		seen[c.Seed] = true
		if c.NumFrames() == 0 {
			t.Error("empty clip in dataset")
		}
	}
}

func TestGeomClampBounds(t *testing.T) {
	if geomClamp(-1, 0, 1) != 0 || geomClamp(2, 0, 1) != 1 || geomClamp(0.5, 0, 1) != 0.5 {
		t.Error("geomClamp wrong")
	}
}
