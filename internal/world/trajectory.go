package world

import (
	"math"
	"math/rand"

	"dive/internal/geom"
)

// MotionState labels the ego vehicle's motion for Figure 14's breakdown.
type MotionState int

// Motion states.
const (
	MotionStatic MotionState = iota + 1
	MotionStraight
	MotionTurning
)

// String returns the state name.
func (m MotionState) String() string {
	switch m {
	case MotionStatic:
		return "static"
	case MotionStraight:
		return "straight"
	case MotionTurning:
		return "turning"
	default:
		return "unknown"
	}
}

// TrajectorySegment is one phase of an ego trajectory with constant speed
// and yaw rate.
type TrajectorySegment struct {
	Duration float64 // seconds
	Speed    float64 // m/s along the heading
	YawRate  float64 // rad/s (positive turns right in the y-down frame)
}

// State classifies the segment for the Figure 14 experiment.
func (s TrajectorySegment) State() MotionState {
	switch {
	case s.Speed < 0.2:
		return MotionStatic
	case math.Abs(s.YawRate) > 0.02:
		return MotionTurning
	default:
		return MotionStraight
	}
}

// EgoTrajectory integrates a sequence of segments into poses. Pitch carries
// small road-vibration oscillation so the rotation-elimination stage always
// has work to do, as on a real vehicle.
type EgoTrajectory struct {
	Segments   []TrajectorySegment
	PitchAmp   float64 // radians of pitch oscillation amplitude
	PitchFreq  float64 // Hz
	pitchPhase float64
}

// Pose is an ego pose sample.
type Pose struct {
	Pos   geom.Vec3
	Yaw   float64
	Pitch float64
	Speed float64
	// YawRate and PitchRate are the instantaneous angular velocities
	// (rad/s); the IMU ground truth for Figures 7 and 10.
	YawRate   float64
	PitchRate float64
	State     MotionState
}

// Duration returns the total trajectory duration in seconds.
func (tr *EgoTrajectory) Duration() float64 {
	d := 0.0
	for _, s := range tr.Segments {
		d += s.Duration
	}
	return d
}

// At integrates the trajectory to time t and returns the pose. Times beyond
// the last segment hold the final pose.
func (tr *EgoTrajectory) At(t float64) Pose {
	pos := geom.Vec3{}
	yaw := 0.0
	remaining := t
	var cur TrajectorySegment
	state := MotionStatic
	for _, seg := range tr.Segments {
		cur = seg
		state = seg.State()
		dt := seg.Duration
		if remaining < dt {
			dt = remaining
		}
		pos, yaw = integrate(pos, yaw, seg, dt)
		remaining -= dt
		if remaining <= 0 {
			break
		}
	}
	if remaining > 0 {
		// Past the end: freeze.
		cur = TrajectorySegment{}
		state = MotionStatic
	}
	pitch := tr.PitchAmp * math.Sin(2*math.Pi*tr.PitchFreq*t+tr.pitchPhase)
	pitchRate := tr.PitchAmp * 2 * math.Pi * tr.PitchFreq * math.Cos(2*math.Pi*tr.PitchFreq*t+tr.pitchPhase)
	if cur.Speed < 0.2 {
		// A stationary vehicle does not vibrate.
		pitch, pitchRate = 0, 0
	}
	return Pose{
		Pos: pos, Yaw: yaw, Pitch: pitch,
		Speed: cur.Speed, YawRate: cur.YawRate, PitchRate: pitchRate,
		State: state,
	}
}

// integrate advances (pos, yaw) through a segment for dt seconds using the
// exact constant-curvature solution.
func integrate(pos geom.Vec3, yaw float64, seg TrajectorySegment, dt float64) (geom.Vec3, float64) {
	if math.Abs(seg.YawRate) < 1e-9 {
		dir := geom.Vec3{X: math.Sin(yaw), Z: math.Cos(yaw)}
		return pos.Add(dir.Scale(seg.Speed * dt)), yaw
	}
	r := seg.Speed / seg.YawRate
	newYaw := yaw + seg.YawRate*dt
	dx := r * (math.Cos(yaw) - math.Cos(newYaw))
	dz := r * (math.Sin(newYaw) - math.Sin(yaw))
	return pos.Add(geom.Vec3{X: dx, Z: dz}), newYaw
}

// IMUSample is one inertial measurement: angular velocity about the camera
// x (pitch) and y (yaw) axes, with sensor noise.
type IMUSample struct {
	T      float64
	GyroX  float64 // rad/s about x (pitch rate)
	GyroY  float64 // rad/s about y (yaw rate)
	TrueGX float64 // noise-free pitch rate (ground truth)
	TrueGY float64 // noise-free yaw rate (ground truth)
}

// SampleIMU samples the trajectory's angular rates at rate Hz with Gaussian
// noise, mirroring the KITTI 100 Hz IMU the paper calibrates against.
func (tr *EgoTrajectory) SampleIMU(duration, rate, noiseStd float64, rng *rand.Rand) []IMUSample {
	n := int(duration * rate)
	out := make([]IMUSample, 0, n)
	for i := 0; i < n; i++ {
		t := float64(i) / rate
		p := tr.At(t)
		out = append(out, IMUSample{
			T:      t,
			GyroX:  p.PitchRate + rng.NormFloat64()*noiseStd,
			GyroY:  p.YawRate + rng.NormFloat64()*noiseStd,
			TrueGX: p.PitchRate,
			TrueGY: p.YawRate,
		})
	}
	return out
}

// UrbanTrajectory builds a stop-and-go city trajectory. All three motion
// states (straight, turning, static) occur within the first four seconds so
// that even short evaluation clips exercise every regime, mirroring the mix
// of the nuScenes clips the paper samples.
func UrbanTrajectory(rng *rand.Rand) *EgoTrajectory {
	cruise := 8 + rng.Float64()*4 // m/s
	turn := 0.18 + rng.Float64()*0.12
	if rng.Intn(2) == 0 {
		turn = -turn
	}
	return &EgoTrajectory{
		Segments: []TrajectorySegment{
			{Duration: 1.0, Speed: cruise},
			{Duration: 1.2, Speed: cruise, YawRate: turn},
			{Duration: 0.6, Speed: cruise * 0.45},
			{Duration: 1.2, Speed: 0}, // red light, ends at 4.0 s
			{Duration: 0.8, Speed: cruise * 0.6},
			{Duration: 2.2, Speed: cruise},
			{Duration: 1.5, Speed: cruise, YawRate: -turn * 0.8},
			{Duration: 11.0, Speed: cruise},
		},
		PitchAmp:   0.0015,
		PitchFreq:  1.7,
		pitchPhase: rng.Float64() * 2 * math.Pi,
	}
}

// SuburbanTrajectory builds a RobotCar-flavored route: steady progress,
// gentle bends, and one brief stop — again with every motion state inside
// the first four seconds.
func SuburbanTrajectory(rng *rand.Rand) *EgoTrajectory {
	cruise := 10 + rng.Float64()*4
	bend := 0.08 + rng.Float64()*0.06
	if rng.Intn(2) == 0 {
		bend = -bend
	}
	return &EgoTrajectory{
		Segments: []TrajectorySegment{
			{Duration: 1.0, Speed: cruise},
			{Duration: 1.3, Speed: cruise, YawRate: bend},
			{Duration: 0.7, Speed: cruise * 0.5},
			{Duration: 1.0, Speed: 0}, // give-way stop, ends at 4.0 s
			{Duration: 0.8, Speed: cruise * 0.7},
			{Duration: 2.2, Speed: cruise},
			{Duration: 1.5, Speed: cruise, YawRate: -bend * 0.7},
			{Duration: 11.5, Speed: cruise},
		},
		PitchAmp:   0.002,
		PitchFreq:  2.1,
		pitchPhase: rng.Float64() * 2 * math.Pi,
	}
}

// HighwayTrajectory builds a KITTI-flavored route: fast, mostly straight,
// with an early sweeping curve — the regime where rotation estimation
// matters.
func HighwayTrajectory(rng *rand.Rand) *EgoTrajectory {
	cruise := 16 + rng.Float64()*6
	sweep := 0.05 + rng.Float64()*0.05
	if rng.Intn(2) == 0 {
		sweep = -sweep
	}
	return &EgoTrajectory{
		Segments: []TrajectorySegment{
			{Duration: 2.0, Speed: cruise},
			{Duration: 2.5, Speed: cruise, YawRate: sweep},
			{Duration: 4.0, Speed: cruise},
			{Duration: 2.0, Speed: cruise, YawRate: -sweep * 0.6},
			{Duration: 9.5, Speed: cruise},
		},
		PitchAmp:   0.0025,
		PitchFreq:  2.6,
		pitchPhase: rng.Float64() * 2 * math.Pi,
	}
}
