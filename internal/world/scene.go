package world

import (
	"math"

	"dive/internal/geom"
)

// Class labels the object categories the detector distinguishes; they match
// the two categories the paper reports AP for.
type Class int

// Object classes.
const (
	ClassCar Class = iota + 1
	ClassPedestrian
	ClassStructure // buildings, signs — rendered but never a detection target
)

// String returns the lowercase class name.
func (c Class) String() string {
	switch c {
	case ClassCar:
		return "car"
	case ClassPedestrian:
		return "pedestrian"
	case ClassStructure:
		return "structure"
	default:
		return "unknown"
	}
}

// Billboard is a renderable object: a vertical, camera-facing textured
// rectangle standing on a base point, with a nominal depth used only for
// ground-truth box projection. Cylindrical billboards preserve the apparent
// width/height and perspective scaling of real objects while keeping the
// rasterizer trivial — all that matters downstream is that blocks of the
// object move coherently.
type Billboard struct {
	ID      int
	Class   Class
	Width   float64 // meters
	Height  float64 // meters
	Depth   float64 // meters (for GT box extents only)
	Tex     Texture
	basePos geom.Vec3 // bottom-center at t=0
	vel     geom.Vec3 // world-frame velocity (m/s); zero for statics
	stopAt  float64   // time at which the actor halts (<0: never)
	resume  float64   // time at which it resumes (<0: never)
}

// NewStatic creates a non-moving billboard.
func NewStatic(id int, class Class, pos geom.Vec3, w, h, d float64, tex Texture) *Billboard {
	return &Billboard{
		ID: id, Class: class, Width: w, Height: h, Depth: d,
		Tex: tex, basePos: pos, stopAt: -1, resume: -1,
	}
}

// NewActor creates a moving billboard with constant velocity, optionally
// halting during [stopAt, resume) to mimic stop-and-go traffic.
func NewActor(id int, class Class, pos, vel geom.Vec3, w, h, d float64, tex Texture, stopAt, resume float64) *Billboard {
	return &Billboard{
		ID: id, Class: class, Width: w, Height: h, Depth: d,
		Tex: tex, basePos: pos, vel: vel, stopAt: stopAt, resume: resume,
	}
}

// Pos returns the bottom-center world position at time t.
func (b *Billboard) Pos(t float64) geom.Vec3 {
	move := t
	if b.stopAt >= 0 && t > b.stopAt {
		pause := t - b.stopAt
		if b.resume >= 0 && t > b.resume {
			pause = b.resume - b.stopAt
		}
		move = t - pause
	}
	return b.basePos.Add(b.vel.Scale(move))
}

// Moving reports whether the billboard is in motion at time t.
func (b *Billboard) Moving(t float64) bool {
	if b.vel.Norm() == 0 {
		return false
	}
	if b.stopAt >= 0 && t > b.stopAt && (b.resume < 0 || t < b.resume) {
		return false
	}
	return true
}

// Axes returns the billboard's horizontal right axis and its normal given a
// camera position, implementing the cylindrical (y-axis) billboard.
func (b *Billboard) Axes(t float64, camPos geom.Vec3) (right, normal geom.Vec3) {
	toCam := camPos.Sub(b.Pos(t))
	toCam.Y = 0
	n := toCam.Norm()
	if n < 1e-9 {
		return geom.Vec3{X: 1}, geom.Vec3{Z: -1}
	}
	normal = toCam.Scale(1 / n)
	// right = up × normal with up = (0,-1,0) in the y-down world.
	up := geom.Vec3{Y: -1}
	right = up.Cross(normal).Normalize()
	return right, normal
}

// Scene is a complete synthetic world: the ground plane, the sky, and all
// renderable objects.
type Scene struct {
	GroundY   float64 // world y of the ground plane (camera height, > 0)
	GroundTex Texture
	Sky       SkyTexture
	Objects   []*Billboard
}

// GroundPlaneY is the default camera height above the road in meters,
// matching a windshield-mounted dashcam.
const GroundPlaneY = 1.4

// ObjectsNear returns the objects whose position at time t lies within
// maxDist of p; the renderer's broad-phase cull.
func (s *Scene) ObjectsNear(p geom.Vec3, t, maxDist float64) []*Billboard {
	out := make([]*Billboard, 0, len(s.Objects))
	for _, o := range s.Objects {
		d := o.Pos(t).Sub(p)
		if math.Hypot(d.X, d.Z) <= maxDist {
			out = append(out, o)
		}
	}
	return out
}
