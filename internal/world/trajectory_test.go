package world

import (
	"math/rand"
	"testing"
)

// TestTrajectoriesCoverAllStatesEarly guards the experiment contract: every
// profile's trajectory must exhibit straight, turning AND static motion
// within the first four seconds, so that default-scale clips exercise every
// regime (Figures 6 and 14 depend on this).
func TestTrajectoriesCoverAllStatesEarly(t *testing.T) {
	cases := []struct {
		name       string
		fn         func(*rand.Rand) *EgoTrajectory
		wantStatic bool
	}{
		{"urban", UrbanTrajectory, true},
		{"suburban", SuburbanTrajectory, true},
		{"highway", HighwayTrajectory, false}, // highways do not stop
	}
	for _, c := range cases {
		for seed := int64(0); seed < 5; seed++ {
			tr := c.fn(rand.New(rand.NewSource(seed)))
			seen := map[MotionState]bool{}
			for ts := 0.0; ts < 4.0; ts += 0.05 {
				seen[tr.At(ts).State] = true
			}
			if !seen[MotionStraight] {
				t.Errorf("%s seed %d: no straight motion in first 4s", c.name, seed)
			}
			if !seen[MotionTurning] {
				t.Errorf("%s seed %d: no turning in first 4s", c.name, seed)
			}
			if c.wantStatic && !seen[MotionStatic] {
				t.Errorf("%s seed %d: no stop in first 4s", c.name, seed)
			}
		}
	}
}

// TestTrajectoryDurationsLongEnough ensures every profile trajectory covers
// the longest clip any experiment renders (22 s for Figure 13).
func TestTrajectoryDurationsLongEnough(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, fn := range []func(*rand.Rand) *EgoTrajectory{UrbanTrajectory, SuburbanTrajectory, HighwayTrajectory} {
		if d := fn(rng).Duration(); d < 19 {
			t.Errorf("trajectory duration %v too short for long experiments", d)
		}
	}
}

// TestLeadVehiclesNearEgoSpeed verifies that the traffic generator creates
// persistent tracking targets: at least one same-direction car moving
// within 30%% of ego cruise speed.
func TestLeadVehiclesNearEgoSpeed(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		p := NuScenesLike()
		traj := p.Trajectory(rng)
		scene := buildScene(p, traj, rng)
		cruise := 0.0
		for _, seg := range traj.Segments {
			if seg.Speed > cruise {
				cruise = seg.Speed
			}
		}
		found := false
		for _, o := range scene.Objects {
			if o.Class != ClassCar || o.vel.Norm() == 0 {
				continue
			}
			ratio := o.vel.Norm() / cruise
			// Same-direction movers sit in [0.75, 1.05]·cruise.
			if ratio > 0.7 && ratio < 1.1 && o.vel.Z > 0 {
				found = true
			}
		}
		if !found {
			t.Errorf("seed %d: no lead vehicle near ego speed", seed)
		}
	}
}
