package world

import "math"

// Texture produces a luma value for a surface coordinate in meters.
// Procedural textures keep the world deterministic and storage-free while
// giving the block matcher real gradients to lock onto.
type Texture interface {
	Sample(u, v float64) uint8
}

// hash2 is a deterministic lattice hash onto [0, 1).
func hash2(x, y int64, seed uint64) float64 {
	h := uint64(x)*0x9E3779B97F4A7C15 ^ uint64(y)*0xC2B2AE3D27D4EB4F ^ seed*0x165667B19E3779F9
	h ^= h >> 33
	h *= 0xFF51AFD7ED558CCD
	h ^= h >> 33
	return float64(h>>11) / float64(1<<53)
}

// smoothstep is the cubic fade used for value-noise interpolation.
func smoothstep(t float64) float64 { return t * t * (3 - 2*t) }

// valueNoise returns smooth 2-D value noise in [0, 1).
func valueNoise(u, v float64, seed uint64) float64 {
	x0 := math.Floor(u)
	y0 := math.Floor(v)
	fx := smoothstep(u - x0)
	fy := smoothstep(v - y0)
	ix, iy := int64(x0), int64(y0)
	v00 := hash2(ix, iy, seed)
	v10 := hash2(ix+1, iy, seed)
	v01 := hash2(ix, iy+1, seed)
	v11 := hash2(ix+1, iy+1, seed)
	a := v00 + (v10-v00)*fx
	b := v01 + (v11-v01)*fx
	return a + (b-a)*fy
}

// NoiseTexture is two octaves of value noise around a base level; the
// general-purpose "surface with visible texture" used for vehicles,
// buildings and pedestrians.
type NoiseTexture struct {
	Base      float64 // mean luma
	Amplitude float64 // luma swing of the coarse octave
	Scale     float64 // features per meter of the coarse octave
	Seed      uint64
}

// Sample implements Texture.
func (t NoiseTexture) Sample(u, v float64) uint8 {
	n := valueNoise(u*t.Scale, v*t.Scale, t.Seed)*2 - 1
	n += (valueNoise(u*t.Scale*4, v*t.Scale*4, t.Seed^0xABCD)*2 - 1) * 0.4
	return clampU8(t.Base + t.Amplitude*n)
}

// StripedTexture overlays horizontal stripes on noise; it reads as windows
// on buildings and panel lines on vehicles, giving strong vertical
// gradients that anchor motion estimation.
type StripedTexture struct {
	Base      float64
	Amplitude float64
	Period    float64 // stripe period in meters
	Seed      uint64
}

// Sample implements Texture.
func (t StripedTexture) Sample(u, v float64) uint8 {
	s := math.Sin(2 * math.Pi * v / t.Period)
	n := valueNoise(u*3, v*3, t.Seed)*2 - 1
	return clampU8(t.Base + t.Amplitude*(0.7*s+0.5*n))
}

// RoadTexture renders asphalt with dashed lane markings parallel to the z
// axis. u is the world x coordinate (lateral), v the world z (longitudinal).
type RoadTexture struct {
	Seed       uint64
	LaneWidth  float64 // meters between lane lines
	DashLen    float64 // meters of painted dash
	DashPeriod float64 // meters between dash starts
	HalfWidth  float64 // road half-width; beyond it lies shoulder/sidewalk
}

// Sample implements Texture.
func (t RoadTexture) Sample(u, v float64) uint8 {
	if math.Abs(u) > t.HalfWidth {
		// Sidewalk: lighter, slightly coarser texture.
		n := valueNoise(u*2.5, v*2.5, t.Seed^0x51DE)*2 - 1
		return clampU8(150 + 18*n)
	}
	// Asphalt: coarse patches (tar seams, repairs) plus mid and fine
	// grain. The coarse octave gives block matching structure to lock
	// onto even when near-field perspective magnifies the surface.
	n := valueNoise(u*0.9, v*0.9, t.Seed^0xA11)*2 - 1
	n += (valueNoise(u*4, v*4, t.Seed)*2 - 1) * 0.6
	n += (valueNoise(u*16, v*16, t.Seed^0x0F0F)*2 - 1) * 0.3
	luma := 95 + 22*n
	// Lane markings: center line and lane separators.
	lat := math.Abs(u)
	for _, lx := range []float64{0, t.LaneWidth} {
		if math.Abs(lat-lx) < 0.10 {
			phase := math.Mod(v, t.DashPeriod)
			if phase < 0 {
				phase += t.DashPeriod
			}
			if phase < t.DashLen {
				luma = 215 + 10*n
			}
		}
	}
	// Curb line at the road edge.
	if math.Abs(lat-t.HalfWidth) < 0.15 {
		luma = 180 + 10*n
	}
	return clampU8(luma)
}

// SkyTexture is the near-featureless gradient above the horizon. Its low
// texture is deliberate: the paper observes that plain regions produce
// noisy, unusable motion vectors, and the sky reproduces that regime.
type SkyTexture struct {
	Seed uint64
}

// Sample returns the sky luma for a view direction expressed as (azimuth
// fraction, elevation fraction).
func (t SkyTexture) Sample(u, v float64) uint8 {
	base := 205 + 35*geomClamp(v, 0, 1)
	n := valueNoise(u*6, v*6, t.Seed)*2 - 1
	return clampU8(base + 4*n)
}

func clampU8(v float64) uint8 {
	if v < 0 {
		return 0
	}
	if v > 255 {
		return 255
	}
	return uint8(v + 0.5)
}

func geomClamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
