package world

import (
	"math"
	"math/rand"

	"dive/internal/geom"
	"dive/internal/imgx"
	"dive/internal/parallel"
)

// GTBox is a ground-truth 2-D annotation for one object in one frame.
type GTBox struct {
	ObjectID int
	Class    Class
	Box      imgx.Rect
	Depth    float64 // camera-space depth of the object, meters
	Visible  float64 // unoccluded fraction in [0, 1]
	Moving   bool    // whether the object itself is in motion
}

// renderBand is the fixed scanline band height the renderer shards by. It is
// part of the output contract: per-band sensor-noise RNG streams are seeded
// by band index, so the band height (never the worker count) determines the
// noise pattern.
const renderBand = 16

// drawn records one successfully rasterized billboard for ground-truth
// extraction.
type drawn struct {
	obj  *Billboard
	rect imgx.Rect
	dpt  float64
}

// bbJob is one projected billboard prepared for banded rasterization: all
// per-object geometry is computed once, serially, in draw order, so the
// per-row raster work is pure and can shard across bands.
type bbJob struct {
	obj       *Billboard
	rect      imgx.Rect // unclipped projected rect, kept for ground truth
	clipped   imgx.Rect
	dpt       float64
	base      geom.Vec3
	right     geom.Vec3
	normal    geom.Vec3
	denomBase float64
}

// Renderer rasterizes a Scene through a Camera with a z-buffer.
type Renderer struct {
	scene *Scene
	depth []float64
	// rendered is the per-frame billboard scratch list, recycled across
	// Render calls; jobs and wroteScratch are the billboard-pass equivalents.
	rendered     []drawn
	jobs         []bbJob
	wroteScratch []bool
	pool         *parallel.Pool
	poolW        int
	// Workers bounds the renderer's scanline-band parallelism (background
	// ray-cast, illumination and sensor noise). 0 sizes to GOMAXPROCS, 1
	// is serial. Output is identical for every value: bands are fixed
	// renderBand-row slabs and each band owns an independent RNG stream.
	Workers int
	// MaxObjectDist culls objects farther than this from the camera.
	MaxObjectDist float64
	// NoiseStd adds per-pixel Gaussian sensor noise (luma levels).
	NoiseStd float64
	// Illumination scales rendered luma before sensor noise; 1 is
	// daylight, small values emulate night capture with analog gain
	// (contrast shrinks, noise does not).
	Illumination float64
	// MinBoxPixels drops ground-truth boxes smaller than this area.
	MinBoxPixels int
	// MinVisible drops ground-truth boxes occluded below this fraction.
	MinVisible float64
}

// NewRenderer creates a renderer for the scene with dashcam-like defaults.
func NewRenderer(scene *Scene) *Renderer {
	return &Renderer{
		scene:         scene,
		MaxObjectDist: 120,
		NoiseStd:      1.2,
		Illumination:  1,
		MinBoxPixels:  30,
		MinVisible:    0.25,
	}
}

// Render draws the scene at time t through cam and returns the luma frame
// together with the ground-truth boxes of detectable objects. frameSeed
// decorrelates sensor noise across frames.
func (r *Renderer) Render(cam *Camera, t float64, frameSeed int64) (*imgx.Plane, []GTBox) {
	w, h := cam.W, cam.H
	frame := imgx.NewPlane(w, h)
	if cap(r.depth) < w*h {
		r.depth = make([]float64, w*h)
	}
	depth := r.depth[:w*h]
	for i := range depth {
		depth[i] = math.Inf(1)
	}

	r.drawBackground(cam, frame, depth)

	objs := r.scene.ObjectsNear(cam.Pos, t, r.MaxObjectDist)
	rendered := r.drawBillboards(cam, frame, depth, objs, t)

	// Sensor model, one fused banded pass. Illumination is pixel-local, so
	// banding cannot change it. Noise draws from a per-band RNG seeded by
	// (frameSeed, band index): streams are independent of the worker count,
	// so output is reproducible at any width — but the pattern differs from
	// the old single-stream scan (documented output change; no golden
	// depends on exact noise values, only on its statistics).
	illum := r.Illumination > 0 && r.Illumination != 1
	if illum || r.NoiseStd > 0 {
		r.workerPool().Bands(h, renderBand, func(b, lo, hi int) {
			var rng *rand.Rand
			if r.NoiseStd > 0 {
				mix := uint64(b+1) * 0x9E3779B97F4A7C15 // Fibonacci hashing spreads band seeds
				rng = rand.New(rand.NewSource(frameSeed ^ int64(mix)))
			}
			for i := lo * w; i < hi*w; i++ {
				v := float64(frame.Pix[i])
				if illum {
					// Night capture: luma (and with it texture contrast)
					// scales down, with a small gain-lifted pedestal so the
					// image is dim but not black.
					v = float64(clampU8(v*r.Illumination + 14))
				}
				if rng != nil {
					v += rng.NormFloat64() * r.NoiseStd
				}
				frame.Pix[i] = clampU8(v)
			}
		})
	}

	// Ground truth: visible fraction estimated against the final z-buffer.
	var gts []GTBox
	for _, d := range rendered {
		if d.obj.Class == ClassStructure {
			continue
		}
		box := d.rect.ClipTo(w, h)
		if box.Area() < r.MinBoxPixels {
			continue
		}
		vis := visibleFraction(depth, w, box, d.dpt)
		if vis < r.MinVisible {
			continue
		}
		gts = append(gts, GTBox{
			ObjectID: d.obj.ID,
			Class:    d.obj.Class,
			Box:      box,
			Depth:    d.dpt,
			Visible:  vis,
			Moving:   d.obj.Moving(t),
		})
	}
	return frame, gts
}

// workerPool returns the pool for the current Workers setting, rebuilding it
// when the setting changed since the last frame.
func (r *Renderer) workerPool() *parallel.Pool {
	if r.pool == nil || r.poolW != r.Workers {
		r.pool = parallel.New(r.Workers)
		r.poolW = r.Workers
	}
	return r.pool
}

// drawBackground fills the sky above the horizon and ray-casts the textured
// ground plane below it. Every pixel is independent, so the frame is sharded
// into fixed scanline bands.
func (r *Renderer) drawBackground(cam *Camera, frame *imgx.Plane, depth []float64) {
	r.workerPool().Bands(cam.H, renderBand, func(_, lo, hi int) {
		r.backgroundRows(cam, frame, depth, lo, hi)
	})
}

// backgroundRows rasterizes background rows [lo, hi).
func (r *Renderer) backgroundRows(cam *Camera, frame *imgx.Plane, depth []float64, lo, hi int) {
	w := cam.W
	groundY := r.scene.GroundY
	for y := lo; y < hi; y++ {
		for x := 0; x < w; x++ {
			d := cam.RayDir(float64(x)+0.5, float64(y)+0.5)
			idx := y*w + x
			if d.Y > 1e-6 {
				tHit := (groundY - cam.Pos.Y) / d.Y
				if tHit > 0 {
					p := cam.Pos.Add(d.Scale(tHit))
					frame.Pix[idx] = r.scene.GroundTex.Sample(p.X, p.Z)
					depth[idx] = tHit // d has camera-z 1, so t == depth
					continue
				}
			}
			// Sky: parameterize by direction.
			az := math.Atan2(d.X, d.Z) / math.Pi
			el := geomClamp(-d.Y*2, 0, 1)
			frame.Pix[idx] = r.scene.Sky.Sample(az, el)
		}
	}
}

// drawBillboards rasterizes all billboards through the band pool. Projection
// setup runs serially in draw order; rasterization shards by the same fixed
// renderBand scanline bands as the rest of the renderer. Row ownership makes
// the pass pixel-identical to the serial object loop at every worker count:
// each pixel belongs to exactly one band, and each band replays the objects
// in draw order, so the per-pixel z-test/write sequence is exactly the one
// the serial loop produced — nearer depth always wins and equal-depth ties
// resolve to the earlier object, with no merge step needed (row ownership
// subsumes the per-band z-buffer merge: the full z-buffer rows are already
// private to the band).
func (r *Renderer) drawBillboards(cam *Camera, frame *imgx.Plane, depth []float64, objs []*Billboard, t float64) []drawn {
	jobs := r.jobs[:0]
	for _, obj := range objs {
		base := obj.Pos(t)
		right, normal := obj.Axes(t, cam.Pos)
		fwd := normal // GT depth extent lies along the view direction
		rect, dpt, ok := cam.ProjectBox(base, right, fwd, obj.Width, obj.Height, obj.Depth)
		if !ok {
			continue
		}
		clipped := rect.ClipTo(cam.W, cam.H)
		if clipped.Empty() {
			continue
		}
		jobs = append(jobs, bbJob{
			obj: obj, rect: rect, clipped: clipped, dpt: dpt,
			base: base, right: right, normal: normal,
			denomBase: normal.Dot(base.Sub(cam.Pos)),
		})
	}
	r.jobs = jobs

	// wrote[b*len(jobs)+j] records whether band b wrote any pixel of job j;
	// the per-object OR below rebuilds the serial "did it rasterize" bit.
	nb := (cam.H + renderBand - 1) / renderBand
	wrote := r.wroteScratch
	if cap(wrote) < len(jobs)*nb {
		wrote = make([]bool, len(jobs)*nb)
	}
	wrote = wrote[:len(jobs)*nb]
	for i := range wrote {
		wrote[i] = false
	}
	r.wroteScratch = wrote
	if len(jobs) > 0 {
		r.workerPool().Bands(cam.H, renderBand, func(b, lo, hi int) {
			for j := range jobs {
				if r.rasterBillboardRows(cam, frame, depth, &jobs[j], lo, hi) {
					wrote[b*len(jobs)+j] = true
				}
			}
		})
	}

	rendered := r.rendered[:0]
	for j := range jobs {
		for b := 0; b < nb; b++ {
			if wrote[b*len(jobs)+j] {
				rendered = append(rendered, drawn{jobs[j].obj, jobs[j].rect, jobs[j].dpt})
				break
			}
		}
	}
	r.rendered = rendered
	return rendered
}

// rasterBillboardRows rasterizes the rows of one billboard that fall inside
// [lo, hi) with perspective-correct inverse mapping and depth testing, and
// reports whether any pixel was written.
func (r *Renderer) rasterBillboardRows(cam *Camera, frame *imgx.Plane, depth []float64, job *bbJob, lo, hi int) bool {
	yMin, yMax := job.clipped.MinY, job.clipped.MaxY
	if yMin < lo {
		yMin = lo
	}
	if yMax > hi {
		yMax = hi
	}
	if yMin >= yMax {
		return false
	}
	obj := job.obj
	up := geom.Vec3{Y: -1}
	wrote := false
	for y := yMin; y < yMax; y++ {
		for x := job.clipped.MinX; x < job.clipped.MaxX; x++ {
			d := cam.RayDir(float64(x)+0.5, float64(y)+0.5)
			nd := job.normal.Dot(d)
			if math.Abs(nd) < 1e-9 {
				continue
			}
			tHit := job.denomBase / nd
			if tHit < 0.5 {
				continue
			}
			idx := y*cam.W + x
			if tHit >= depth[idx] {
				continue
			}
			p := cam.Pos.Add(d.Scale(tHit))
			rel := p.Sub(job.base)
			u := rel.Dot(job.right)
			v := rel.Dot(up)
			if u < -obj.Width/2 || u > obj.Width/2 || v < 0 || v > obj.Height {
				continue
			}
			frame.Pix[idx] = obj.Tex.Sample(u+obj.Width/2, obj.Height-v)
			depth[idx] = tHit
			wrote = true
		}
	}
	return wrote
}

// visibleFraction samples the z-buffer on a grid inside box and reports the
// fraction of samples whose final depth is close to objDepth, i.e. the
// fraction of the object not hidden behind nearer geometry.
func visibleFraction(depth []float64, stride int, box imgx.Rect, objDepth float64) float64 {
	const grid = 6
	total, vis := 0, 0
	for gy := 0; gy < grid; gy++ {
		for gx := 0; gx < grid; gx++ {
			x := box.MinX + (box.W()*(2*gx+1))/(2*grid)
			y := box.MinY + (box.H()*(2*gy+1))/(2*grid)
			total++
			d := depth[y*stride+x]
			if d <= objDepth*1.15+1.0 {
				// The surface here is the object itself (or something at
				// its depth); count as visible.
				if d >= objDepth*0.8-1.0 {
					vis++
				}
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(vis) / float64(total)
}
