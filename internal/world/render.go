package world

import (
	"math"
	"math/rand"

	"dive/internal/geom"
	"dive/internal/imgx"
	"dive/internal/parallel"
)

// GTBox is a ground-truth 2-D annotation for one object in one frame.
type GTBox struct {
	ObjectID int
	Class    Class
	Box      imgx.Rect
	Depth    float64 // camera-space depth of the object, meters
	Visible  float64 // unoccluded fraction in [0, 1]
	Moving   bool    // whether the object itself is in motion
}

// renderBand is the fixed scanline band height the renderer shards by. It is
// part of the output contract: per-band sensor-noise RNG streams are seeded
// by band index, so the band height (never the worker count) determines the
// noise pattern.
const renderBand = 16

// drawn records one successfully rasterized billboard for ground-truth
// extraction.
type drawn struct {
	obj  *Billboard
	rect imgx.Rect
	dpt  float64
}

// Renderer rasterizes a Scene through a Camera with a z-buffer.
type Renderer struct {
	scene *Scene
	depth []float64
	// rendered is the per-frame billboard scratch list, recycled across
	// Render calls.
	rendered []drawn
	pool     *parallel.Pool
	poolW    int
	// Workers bounds the renderer's scanline-band parallelism (background
	// ray-cast, illumination and sensor noise). 0 sizes to GOMAXPROCS, 1
	// is serial. Output is identical for every value: bands are fixed
	// renderBand-row slabs and each band owns an independent RNG stream.
	Workers int
	// MaxObjectDist culls objects farther than this from the camera.
	MaxObjectDist float64
	// NoiseStd adds per-pixel Gaussian sensor noise (luma levels).
	NoiseStd float64
	// Illumination scales rendered luma before sensor noise; 1 is
	// daylight, small values emulate night capture with analog gain
	// (contrast shrinks, noise does not).
	Illumination float64
	// MinBoxPixels drops ground-truth boxes smaller than this area.
	MinBoxPixels int
	// MinVisible drops ground-truth boxes occluded below this fraction.
	MinVisible float64
}

// NewRenderer creates a renderer for the scene with dashcam-like defaults.
func NewRenderer(scene *Scene) *Renderer {
	return &Renderer{
		scene:         scene,
		MaxObjectDist: 120,
		NoiseStd:      1.2,
		Illumination:  1,
		MinBoxPixels:  30,
		MinVisible:    0.25,
	}
}

// Render draws the scene at time t through cam and returns the luma frame
// together with the ground-truth boxes of detectable objects. frameSeed
// decorrelates sensor noise across frames.
func (r *Renderer) Render(cam *Camera, t float64, frameSeed int64) (*imgx.Plane, []GTBox) {
	w, h := cam.W, cam.H
	frame := imgx.NewPlane(w, h)
	if cap(r.depth) < w*h {
		r.depth = make([]float64, w*h)
	}
	depth := r.depth[:w*h]
	for i := range depth {
		depth[i] = math.Inf(1)
	}

	r.drawBackground(cam, frame, depth)

	objs := r.scene.ObjectsNear(cam.Pos, t, r.MaxObjectDist)
	// Billboards stay serial: they contend on the shared z-buffer and are a
	// small fraction of the pixel work.
	rendered := r.rendered[:0]
	for _, obj := range objs {
		rect, dpt, ok := r.drawBillboard(cam, frame, depth, obj, t)
		if ok {
			rendered = append(rendered, drawn{obj, rect, dpt})
		}
	}
	r.rendered = rendered

	// Sensor model, one fused banded pass. Illumination is pixel-local, so
	// banding cannot change it. Noise draws from a per-band RNG seeded by
	// (frameSeed, band index): streams are independent of the worker count,
	// so output is reproducible at any width — but the pattern differs from
	// the old single-stream scan (documented output change; no golden
	// depends on exact noise values, only on its statistics).
	illum := r.Illumination > 0 && r.Illumination != 1
	if illum || r.NoiseStd > 0 {
		r.workerPool().Bands(h, renderBand, func(b, lo, hi int) {
			var rng *rand.Rand
			if r.NoiseStd > 0 {
				mix := uint64(b+1) * 0x9E3779B97F4A7C15 // Fibonacci hashing spreads band seeds
				rng = rand.New(rand.NewSource(frameSeed ^ int64(mix)))
			}
			for i := lo * w; i < hi*w; i++ {
				v := float64(frame.Pix[i])
				if illum {
					// Night capture: luma (and with it texture contrast)
					// scales down, with a small gain-lifted pedestal so the
					// image is dim but not black.
					v = float64(clampU8(v*r.Illumination + 14))
				}
				if rng != nil {
					v += rng.NormFloat64() * r.NoiseStd
				}
				frame.Pix[i] = clampU8(v)
			}
		})
	}

	// Ground truth: visible fraction estimated against the final z-buffer.
	var gts []GTBox
	for _, d := range rendered {
		if d.obj.Class == ClassStructure {
			continue
		}
		box := d.rect.ClipTo(w, h)
		if box.Area() < r.MinBoxPixels {
			continue
		}
		vis := visibleFraction(depth, w, box, d.dpt)
		if vis < r.MinVisible {
			continue
		}
		gts = append(gts, GTBox{
			ObjectID: d.obj.ID,
			Class:    d.obj.Class,
			Box:      box,
			Depth:    d.dpt,
			Visible:  vis,
			Moving:   d.obj.Moving(t),
		})
	}
	return frame, gts
}

// workerPool returns the pool for the current Workers setting, rebuilding it
// when the setting changed since the last frame.
func (r *Renderer) workerPool() *parallel.Pool {
	if r.pool == nil || r.poolW != r.Workers {
		r.pool = parallel.New(r.Workers)
		r.poolW = r.Workers
	}
	return r.pool
}

// drawBackground fills the sky above the horizon and ray-casts the textured
// ground plane below it. Every pixel is independent, so the frame is sharded
// into fixed scanline bands.
func (r *Renderer) drawBackground(cam *Camera, frame *imgx.Plane, depth []float64) {
	r.workerPool().Bands(cam.H, renderBand, func(_, lo, hi int) {
		r.backgroundRows(cam, frame, depth, lo, hi)
	})
}

// backgroundRows rasterizes background rows [lo, hi).
func (r *Renderer) backgroundRows(cam *Camera, frame *imgx.Plane, depth []float64, lo, hi int) {
	w := cam.W
	groundY := r.scene.GroundY
	for y := lo; y < hi; y++ {
		for x := 0; x < w; x++ {
			d := cam.RayDir(float64(x)+0.5, float64(y)+0.5)
			idx := y*w + x
			if d.Y > 1e-6 {
				tHit := (groundY - cam.Pos.Y) / d.Y
				if tHit > 0 {
					p := cam.Pos.Add(d.Scale(tHit))
					frame.Pix[idx] = r.scene.GroundTex.Sample(p.X, p.Z)
					depth[idx] = tHit // d has camera-z 1, so t == depth
					continue
				}
			}
			// Sky: parameterize by direction.
			az := math.Atan2(d.X, d.Z) / math.Pi
			el := geomClamp(-d.Y*2, 0, 1)
			frame.Pix[idx] = r.scene.Sky.Sample(az, el)
		}
	}
}

// drawBillboard rasterizes one billboard with perspective-correct inverse
// mapping and depth testing. It returns the projected bounding rectangle
// and the object's representative depth.
func (r *Renderer) drawBillboard(cam *Camera, frame *imgx.Plane, depth []float64, obj *Billboard, t float64) (imgx.Rect, float64, bool) {
	base := obj.Pos(t)
	right, normal := obj.Axes(t, cam.Pos)
	fwd := normal // GT depth extent lies along the view direction
	rect, dpt, ok := cam.ProjectBox(base, right, fwd, obj.Width, obj.Height, obj.Depth)
	if !ok {
		return imgx.Rect{}, 0, false
	}
	clipped := rect.ClipTo(cam.W, cam.H)
	if clipped.Empty() {
		return imgx.Rect{}, 0, false
	}
	up := geom.Vec3{Y: -1}
	denomBase := normal.Dot(base.Sub(cam.Pos))
	wrote := false
	for y := clipped.MinY; y < clipped.MaxY; y++ {
		for x := clipped.MinX; x < clipped.MaxX; x++ {
			d := cam.RayDir(float64(x)+0.5, float64(y)+0.5)
			nd := normal.Dot(d)
			if math.Abs(nd) < 1e-9 {
				continue
			}
			tHit := denomBase / nd
			if tHit < 0.5 {
				continue
			}
			idx := y*cam.W + x
			if tHit >= depth[idx] {
				continue
			}
			p := cam.Pos.Add(d.Scale(tHit))
			rel := p.Sub(base)
			u := rel.Dot(right)
			v := rel.Dot(up)
			if u < -obj.Width/2 || u > obj.Width/2 || v < 0 || v > obj.Height {
				continue
			}
			frame.Pix[idx] = obj.Tex.Sample(u+obj.Width/2, obj.Height-v)
			depth[idx] = tHit
			wrote = true
		}
	}
	return rect, dpt, wrote
}

// visibleFraction samples the z-buffer on a grid inside box and reports the
// fraction of samples whose final depth is close to objDepth, i.e. the
// fraction of the object not hidden behind nearer geometry.
func visibleFraction(depth []float64, stride int, box imgx.Rect, objDepth float64) float64 {
	const grid = 6
	total, vis := 0, 0
	for gy := 0; gy < grid; gy++ {
		for gx := 0; gx < grid; gx++ {
			x := box.MinX + (box.W()*(2*gx+1))/(2*grid)
			y := box.MinY + (box.H()*(2*gy+1))/(2*grid)
			total++
			d := depth[y*stride+x]
			if d <= objDepth*1.15+1.0 {
				// The surface here is the object itself (or something at
				// its depth); count as visible.
				if d >= objDepth*0.8-1.0 {
					vis++
				}
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(vis) / float64(total)
}
