package world

import (
	"math"
	"testing"

	"dive/internal/geom"
)

func TestProjectCenterline(t *testing.T) {
	cam := NewCamera(250, 320, 192)
	// A point straight ahead projects to the principal point.
	pt, depth, ok := cam.Project(geom.Vec3{Z: 10})
	if !ok {
		t.Fatal("point ahead not projected")
	}
	if math.Abs(pt.X-160) > 1e-9 || math.Abs(pt.Y-96) > 1e-9 {
		t.Errorf("projection = %v, want principal point", pt)
	}
	if depth != 10 {
		t.Errorf("depth = %v", depth)
	}
	// Behind the camera: not projectable.
	if _, _, ok := cam.Project(geom.Vec3{Z: -5}); ok {
		t.Error("point behind camera should not project")
	}
}

func TestProjectPinholeEquations(t *testing.T) {
	// Eq. (1): x = f·X/Z, y = f·Y/Z relative to the principal point.
	cam := NewCamera(200, 320, 192)
	p := geom.Vec3{X: 2, Y: 1, Z: 20}
	pt, _, ok := cam.Project(p)
	if !ok {
		t.Fatal("not projected")
	}
	wantX := 200*2/20.0 + 160
	wantY := 200*1/20.0 + 96
	if math.Abs(pt.X-wantX) > 1e-9 || math.Abs(pt.Y-wantY) > 1e-9 {
		t.Errorf("projection = %v, want (%v,%v)", pt, wantX, wantY)
	}
}

func TestForwardTranslationMovesPointsAwayFromFOE(t *testing.T) {
	// Observation 1: under pure forward translation, static points flow
	// radially away from the FOE (the principal point here).
	cam := NewCamera(250, 320, 192)
	points := []geom.Vec3{
		{X: 3, Y: 1, Z: 30},
		{X: -5, Y: 1.2, Z: 40},
		{X: 1, Y: -2, Z: 25},
	}
	var before []geom.Vec2
	for _, p := range points {
		pt, _, ok := cam.Project(p)
		if !ok {
			t.Fatal("setup projection failed")
		}
		before = append(before, pt)
	}
	cam.SetPose(geom.Vec3{Z: 1.0}, 0, 0) // move 1 m forward
	foe := geom.Vec2{X: 160, Y: 96}
	for i, p := range points {
		pt, _, ok := cam.Project(p)
		if !ok {
			t.Fatal("projection failed after move")
		}
		mv := pt.Sub(before[i])
		radial := before[i].Sub(foe)
		// The flow must align with the radial direction.
		cosSim := mv.Dot(radial) / (mv.Norm() * radial.Norm())
		if cosSim < 0.999 {
			t.Errorf("point %d: flow not radial from FOE (cos=%v)", i, cosSim)
		}
	}
}

func TestYawRotationFlow(t *testing.T) {
	// Eq. (4): a small yaw rotation shifts all points horizontally by
	// ≈ -Δφ·f at the image center, independent of depth.
	cam := NewCamera(250, 320, 192)
	near := geom.Vec3{X: 0.1, Y: 0.1, Z: 10}
	far := geom.Vec3{X: 0.4, Y: 0.4, Z: 40}
	p1n, _, _ := cam.Project(near)
	p1f, _, _ := cam.Project(far)
	dphi := 0.01
	cam.SetPose(geom.Vec3{}, dphi, 0)
	p2n, _, _ := cam.Project(near)
	p2f, _, _ := cam.Project(far)
	dxn := p2n.X - p1n.X
	dxf := p2f.X - p1f.X
	want := -dphi * 250
	if math.Abs(dxn-want) > 0.5 || math.Abs(dxf-want) > 0.5 {
		t.Errorf("yaw flow: near %v far %v, want ≈ %v", dxn, dxf, want)
	}
	// Depth independence is what distinguishes rotation from translation.
	if math.Abs(dxn-dxf) > 0.2 {
		t.Errorf("rotational flow should be depth-independent: %v vs %v", dxn, dxf)
	}
}

func TestRayDirInvertsProjection(t *testing.T) {
	cam := NewCamera(250, 320, 192)
	cam.SetPose(geom.Vec3{X: 2, Y: -1, Z: 5}, 0.3, -0.05)
	p := geom.Vec3{X: 7, Y: 0.5, Z: 42}
	pt, depth, ok := cam.Project(p)
	if !ok {
		t.Fatal("projection failed")
	}
	d := cam.RayDir(pt.X, pt.Y)
	rec := cam.Pos.Add(d.Scale(depth))
	if rec.Sub(p).Norm() > 1e-6 {
		t.Errorf("ray reconstruction = %v, want %v", rec, p)
	}
}

func TestProjectBox(t *testing.T) {
	cam := NewCamera(250, 320, 192)
	right := geom.Vec3{X: 1}
	fwd := geom.Vec3{Z: 1}
	rect, depth, ok := cam.ProjectBox(geom.Vec3{Y: GroundPlaneY, Z: 20}, right, fwd, 2, 1.5, 1)
	if !ok {
		t.Fatal("box not projected")
	}
	if rect.Empty() {
		t.Fatal("empty box")
	}
	if depth > 20 || depth < 19 {
		t.Errorf("depth = %v, want ≈ 19.5 (near face)", depth)
	}
	// A box fully behind the camera is rejected.
	if _, _, ok := cam.ProjectBox(geom.Vec3{Z: -30}, right, fwd, 2, 1.5, 1); ok {
		t.Error("box behind camera should not project")
	}
}
