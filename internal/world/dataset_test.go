package world

import (
	"bytes"
	"testing"
)

// TestClipSourceMatchesGenerateClip pins the streaming contract: rendering
// frames on demand through ClipSource must be byte-identical to the eager
// GenerateClip — frames, ground truth, poses and the IMU track — so a
// pipelined capture stage can replace a pre-rendered clip with no output
// change.
func TestClipSourceMatchesGenerateClip(t *testing.T) {
	p := KITTILike() // IMU-bearing profile: covers the IMU draw order too
	p.ClipDuration = 1.0
	const seed = 42

	want := GenerateClip(p, seed)
	src := NewClipSource(p, seed)

	if src.NumFrames() != want.NumFrames() {
		t.Fatalf("NumFrames = %d, want %d", src.NumFrames(), want.NumFrames())
	}
	if src.Focal() != want.Focal {
		t.Errorf("Focal = %v, want %v", src.Focal(), want.Focal)
	}
	for i := 0; i < want.NumFrames(); i++ {
		frame, gt, pose := src.Frame(i)
		if !bytes.Equal(frame.Pix, want.Frames[i].Pix) {
			t.Fatalf("frame %d pixels differ from GenerateClip", i)
		}
		if len(gt) != len(want.GT[i]) {
			t.Fatalf("frame %d: %d GT boxes, want %d", i, len(gt), len(want.GT[i]))
		}
		for k := range gt {
			if gt[k] != want.GT[i][k] {
				t.Fatalf("frame %d GT box %d differs", i, k)
			}
		}
		if pose != want.Poses[i] {
			t.Fatalf("frame %d pose differs", i)
		}
	}
	if len(src.IMU()) != len(want.IMU) {
		t.Fatalf("IMU length %d, want %d", len(src.IMU()), len(want.IMU))
	}
	for k := range want.IMU {
		if src.IMU()[k] != want.IMU[k] {
			t.Fatalf("IMU sample %d differs", k)
		}
	}

	// Random access re-renders identically: the per-frame seed, not render
	// order, determines the output.
	again, _, _ := src.Frame(3)
	if !bytes.Equal(again.Pix, want.Frames[3].Pix) {
		t.Fatal("re-rendered frame 3 differs")
	}
}
