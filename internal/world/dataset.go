package world

import (
	"math"
	"math/rand"

	"dive/internal/geom"
	"dive/internal/imgx"
)

// Profile describes a synthetic stand-in for one of the paper's datasets.
// Resolutions are scaled-down versions of the originals with the macroblock
// grid preserved (multiples of 16); FPS and scene composition mimic each
// dataset's character.
type Profile struct {
	Name         string
	FPS          float64
	W, H         int
	FOVDeg       float64
	ClipDuration float64 // seconds per generated clip
	NumCars      int     // moving + parked cars per clip
	NumPeds      int
	Trajectory   func(*rand.Rand) *EgoTrajectory
	IMURate      float64 // Hz; 0 disables IMU generation
	IMUNoiseStd  float64 // rad/s
	// Illumination scales scene luma (1 = daylight). Low values compress
	// texture contrast the way night footage does.
	Illumination float64
	// SensorNoiseBoost multiplies the renderer's sensor noise; night
	// cameras apply analog gain, amplifying noise along with the signal.
	SensorNoiseBoost float64
}

// NuScenesLike mirrors nuScenes: 12 FPS urban stop-and-go driving with a
// car-heavy object mix (original 1600×900 → 320×192 here).
func NuScenesLike() Profile {
	return Profile{
		Name: "nuScenes", FPS: 12, W: 320, H: 192, FOVDeg: 65,
		ClipDuration: 8, NumCars: 14, NumPeds: 6,
		Trajectory: UrbanTrajectory,
	}
}

// NuScenesNightLike mirrors the nuScenes night clips the paper explicitly
// EXCLUDES from its evaluation ("almost all motion vectors are calculated
// to be zero at night"): low illumination crushes texture contrast while
// sensor gain amplifies noise, so block matching loses its signal. The
// night study reproduces that failure mode.
func NuScenesNightLike() Profile {
	p := NuScenesLike()
	p.Name = "nuScenes-night"
	p.Illumination = 0.06
	p.SensorNoiseBoost = 4.0
	return p
}

// RobotCarLike mirrors Oxford RobotCar: 16 FPS suburban driving with a
// pedestrian-heavy mix (original 1280×960 → 320×240 here).
func RobotCarLike() Profile {
	return Profile{
		Name: "RobotCar", FPS: 16, W: 320, H: 240, FOVDeg: 62,
		ClipDuration: 8, NumCars: 9, NumPeds: 12,
		Trajectory: SuburbanTrajectory,
	}
}

// KITTILike mirrors KITTI: 10 FPS highway/rural driving with a 100 Hz IMU
// (original 1242×375 → 400×128 here). It backs the rotation-estimation
// experiments (Figures 7 and 10).
func KITTILike() Profile {
	return Profile{
		Name: "KITTI", FPS: 10, W: 400, H: 128, FOVDeg: 80,
		ClipDuration: 8, NumCars: 8, NumPeds: 2,
		Trajectory: HighwayTrajectory,
		IMURate:    100, IMUNoiseStd: 0.004,
	}
}

// Clip is one generated video clip with full ground truth.
type Clip struct {
	Profile string
	FPS     float64
	W, H    int
	Focal   float64
	Frames  []*imgx.Plane
	GT      [][]GTBox
	Poses   []Pose
	IMU     []IMUSample
	Seed    int64
}

// NumFrames returns the clip length in frames.
func (c *Clip) NumFrames() int { return len(c.Frames) }

// FrameInterval returns the inter-frame time in seconds.
func (c *Clip) FrameInterval() float64 { return 1 / c.FPS }

// Focal returns the focal length in pixels for a profile.
func (p Profile) focal() float64 {
	return float64(p.W) / (2 * math.Tan(p.FOVDeg*math.Pi/360))
}

// ClipSource renders a clip frame by frame, on demand — the streaming
// counterpart of GenerateClip for pipelined runs where frame capture
// (pipeline stage A) overlaps the encode of earlier frames instead of
// materializing the whole clip up front. The trajectory, scene and IMU
// track are fixed at construction and every frame derives its sensor noise
// from a per-frame seed, so Frame(i) is byte-identical to
// GenerateClip(p, seed).Frames[i] regardless of how many frames are pulled.
//
// A ClipSource is not safe for concurrent use: Frame reuses the renderer's
// scratch state. One pipeline capture stage (a single goroutine) is the
// intended caller.
type ClipSource struct {
	profile Profile
	seed    int64
	traj    *EgoTrajectory
	cam     *Camera
	rdr     *Renderer
	imu     []IMUSample
	n       int
}

// NewClipSource fixes the clip's trajectory, scene and IMU track for the
// given (profile, seed) pair, without rendering any frames.
func NewClipSource(p Profile, seed int64) *ClipSource {
	// RNG consumption order matches GenerateClip's original single pass
	// (trajectory, scene, IMU): the per-frame renders never touch this
	// generator, so sampling the IMU up front draws identical values.
	rng := rand.New(rand.NewSource(seed))
	traj := p.Trajectory(rng)
	scene := buildScene(p, traj, rng)
	rdr := NewRenderer(scene)
	if p.Illumination > 0 {
		rdr.Illumination = p.Illumination
	}
	if p.SensorNoiseBoost > 0 {
		rdr.NoiseStd *= p.SensorNoiseBoost
	}
	src := &ClipSource{
		profile: p,
		seed:    seed,
		traj:    traj,
		cam:     NewCamera(p.focal(), p.W, p.H),
		rdr:     rdr,
		n:       int(p.ClipDuration*p.FPS + 0.5),
	}
	if p.IMURate > 0 {
		src.imu = traj.SampleIMU(p.ClipDuration, p.IMURate, p.IMUNoiseStd, rng)
	}
	return src
}

// NumFrames returns the clip length in frames.
func (s *ClipSource) NumFrames() int { return s.n }

// Focal returns the camera focal length in pixels.
func (s *ClipSource) Focal() float64 { return s.profile.focal() }

// IMU returns the clip's IMU track (nil when the profile has no IMU).
func (s *ClipSource) IMU() []IMUSample { return s.imu }

// Frame renders frame i and returns it with its ground truth and ego pose.
func (s *ClipSource) Frame(i int) (*imgx.Plane, []GTBox, Pose) {
	t := float64(i) / s.profile.FPS
	pose := s.traj.At(t)
	s.cam.SetPose(pose.Pos, pose.Yaw, pose.Pitch)
	frame, gt := s.rdr.Render(s.cam, t, s.seed*1_000_003+int64(i))
	return frame, gt, pose
}

// GenerateClip renders one clip of the profile with the given seed. The
// same (profile, seed) pair always produces the identical clip.
func GenerateClip(p Profile, seed int64) *Clip {
	src := NewClipSource(p, seed)
	clip := &Clip{
		Profile: p.Name, FPS: p.FPS, W: p.W, H: p.H, Focal: p.focal(),
		Frames: make([]*imgx.Plane, 0, src.n),
		GT:     make([][]GTBox, 0, src.n),
		Poses:  make([]Pose, 0, src.n),
		IMU:    src.imu,
		Seed:   seed,
	}
	for i := 0; i < src.n; i++ {
		frame, gt, pose := src.Frame(i)
		clip.Frames = append(clip.Frames, frame)
		clip.GT = append(clip.GT, gt)
		clip.Poses = append(clip.Poses, pose)
	}
	return clip
}

// GenerateDataset renders numClips clips with consecutive seeds.
func GenerateDataset(p Profile, baseSeed int64, numClips int) []*Clip {
	clips := make([]*Clip, 0, numClips)
	for i := 0; i < numClips; i++ {
		clips = append(clips, GenerateClip(p, baseSeed+int64(i)*7919))
	}
	return clips
}

// pathPoint is a sampled point of the ego route with its local heading.
type pathPoint struct {
	pos geom.Vec3
	yaw float64
}

// buildScene places roadside structure, parked and moving cars, and
// pedestrians along the ego's future path so that the generated world stays
// plausible whatever the trajectory does.
func buildScene(p Profile, traj *EgoTrajectory, rng *rand.Rand) *Scene {
	scene := &Scene{
		GroundY: GroundPlaneY,
		GroundTex: RoadTexture{
			Seed: uint64(rng.Int63()), LaneWidth: 3.5,
			DashLen: 2, DashPeriod: 6, HalfWidth: 7.5,
		},
		Sky: SkyTexture{Seed: uint64(rng.Int63())},
	}

	// Sample the route (plus lookahead beyond the end) every ~4 m.
	dur := traj.Duration()
	var path []pathPoint
	step := 0.1
	lastPos := traj.At(0).Pos
	path = append(path, pathPoint{lastPos, traj.At(0).Yaw})
	acc := 0.0
	endPose := traj.At(dur)
	for t := step; t < dur+0.01; t += step {
		pose := traj.At(t)
		acc += pose.Pos.Sub(lastPos).Norm()
		lastPos = pose.Pos
		if acc >= 4 {
			path = append(path, pathPoint{pose.Pos, pose.Yaw})
			acc = 0
		}
	}
	// Lookahead: extend 150 m straight past the end so the horizon is
	// never empty.
	dir := geom.Vec3{X: math.Sin(endPose.Yaw), Z: math.Cos(endPose.Yaw)}
	for d := 4.0; d <= 150; d += 4 {
		path = append(path, pathPoint{endPose.Pos.Add(dir.Scale(d)), endPose.Yaw})
	}

	id := 1
	// Buildings every few path samples on both sides.
	for i := 0; i < len(path); i += 3 {
		pt := path[i]
		for _, side := range []float64{-1, 1} {
			if rng.Float64() < 0.25 {
				continue // occasional gap
			}
			off := 11 + rng.Float64()*6
			w := 8 + rng.Float64()*8
			h := 5 + rng.Float64()*7
			pos := lateral(pt, side*off)
			scene.Objects = append(scene.Objects, NewStatic(
				id, ClassStructure, pos, w, h, w,
				StripedTexture{Base: 120 + rng.Float64()*60, Amplitude: 35, Period: 2.5 + rng.Float64()*2, Seed: uint64(rng.Int63())},
			))
			id++
		}
	}

	carTex := func() Texture {
		return NoiseTexture{Base: 60 + rng.Float64()*120, Amplitude: 45, Scale: 1.5, Seed: uint64(rng.Int63())}
	}
	pedTex := func() Texture {
		return NoiseTexture{Base: 70 + rng.Float64()*100, Amplitude: 50, Scale: 4, Seed: uint64(rng.Int63())}
	}

	// Ego cruise speed: lead vehicles move near it so they persist in the
	// field of view for many seconds, as real traffic does.
	cruise := 0.0
	for _, seg := range traj.Segments {
		if seg.Speed > cruise {
			cruise = seg.Speed
		}
	}

	// Cars: 40% parked at the curb, 40% leading in-lane near ego speed,
	// 20% oncoming.
	for i := 0; i < p.NumCars; i++ {
		anchor := path[rng.Intn(len(path))]
		switch i % 5 {
		case 0, 1: // parked
			side := 1.0
			if rng.Intn(2) == 0 {
				side = -1
			}
			pos := lateral(anchor, side*5.8)
			scene.Objects = append(scene.Objects, NewStatic(
				id, ClassCar, pos, 3.6+rng.Float64(), 1.5, 1.8, carTex()))
		case 2, 3: // same direction, in-lane, near ego speed, stop-and-go
			fwd := headingDir(anchor.yaw)
			speed := cruise * (0.75 + rng.Float64()*0.3)
			stopAt, resume := -1.0, -1.0
			if rng.Float64() < 0.4 {
				stopAt = rng.Float64() * dur * 0.5
				resume = stopAt + 1.5 + rng.Float64()*2
			}
			pos := lateral(anchor, (rng.Float64()-0.5)*1.5)
			scene.Objects = append(scene.Objects, NewActor(
				id, ClassCar, pos, fwd.Scale(speed), 2.0+rng.Float64()*0.5, 1.5, 4.2, carTex(), stopAt, resume))
		default: // oncoming
			fwd := headingDir(anchor.yaw)
			speed := 7 + rng.Float64()*7
			pos := lateral(anchor, -3.5)
			scene.Objects = append(scene.Objects, NewActor(
				id, ClassCar, pos, fwd.Scale(-speed), 2.0+rng.Float64()*0.5, 1.5, 4.2, carTex(), -1, -1))
		}
		id++
	}

	// Pedestrians: on sidewalks, walking along or across the road.
	for i := 0; i < p.NumPeds; i++ {
		anchor := path[rng.Intn(len(path))]
		side := 1.0
		if rng.Intn(2) == 0 {
			side = -1
		}
		pos := lateral(anchor, side*(6.5+rng.Float64()*2))
		var vel geom.Vec3
		if rng.Float64() < 0.3 {
			// Crossing: walk toward the other sidewalk.
			vel = lateral(anchor, 0).Sub(pos).Normalize().Scale(1.0 + rng.Float64()*0.5)
		} else {
			dirSign := 1.0
			if rng.Intn(2) == 0 {
				dirSign = -1
			}
			vel = headingDir(anchor.yaw).Scale(dirSign * (0.8 + rng.Float64()*0.8))
		}
		scene.Objects = append(scene.Objects, NewActor(
			id, ClassPedestrian, pos, vel, 0.55, 1.75, 0.5, pedTex(), -1, -1))
		id++
	}
	return scene
}

// lateral offsets a path point sideways (positive = right of heading).
func lateral(pt pathPoint, off float64) geom.Vec3 {
	right := geom.Vec3{X: math.Cos(pt.yaw), Z: -math.Sin(pt.yaw)}
	p := pt.pos.Add(right.Scale(off))
	p.Y = GroundPlaneY // stand on the ground
	return p
}

// headingDir converts a yaw angle to a horizontal unit direction.
func headingDir(yaw float64) geom.Vec3 {
	return geom.Vec3{X: math.Sin(yaw), Z: math.Cos(yaw)}
}
