package world

import (
	"math/rand"
	"testing"
)

func BenchmarkRenderFrame(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	p := NuScenesLike()
	traj := p.Trajectory(rng)
	scene := buildScene(p, traj, rng)
	cam := NewCamera(p.focal(), p.W, p.H)
	rdr := NewRenderer(scene)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := float64(i%48) / p.FPS
		pose := traj.At(t)
		cam.SetPose(pose.Pos, pose.Yaw, pose.Pitch)
		rdr.Render(cam, t, int64(i))
	}
}

func BenchmarkGenerateClip(b *testing.B) {
	p := NuScenesLike()
	p.ClipDuration = 1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		GenerateClip(p, int64(i))
	}
}
