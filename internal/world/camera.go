// Package world implements the synthetic driving world that substitutes for
// the nuScenes / RobotCar / KITTI recordings used by the paper: a pinhole
// camera on a moving ego vehicle, a textured ground plane, static roadside
// structure, moving cars and pedestrians, a z-buffered renderer, per-frame
// 2-D ground-truth boxes, and a synthetic IMU.
//
// Conventions follow the paper's Section II: the camera frame has x
// rightward, y downward and z along the optical axis; the world frame is the
// camera frame of the ego's initial pose. The ground plane therefore sits at
// a constant positive Y (below the camera).
package world

import (
	"dive/internal/geom"
	"dive/internal/imgx"
)

// Camera is a pinhole camera with square pixels and the principal point at
// the image center.
type Camera struct {
	F      float64 // focal length in pixels
	W, H   int     // image size in pixels
	Pos    geom.Vec3
	Yaw    float64 // rotation about world y (left/right heading), radians
	Pitch  float64 // rotation about camera x (nose up/down), radians
	minZ   float64 // near plane
	rot    geom.Mat3
	rotInv geom.Mat3
	dirty  bool
}

// NewCamera creates a camera with the given focal length and image size.
func NewCamera(f float64, w, h int) *Camera {
	c := &Camera{F: f, W: w, H: h, minZ: 0.5, dirty: true}
	c.refresh()
	return c
}

// SetPose positions and orients the camera.
func (c *Camera) SetPose(pos geom.Vec3, yaw, pitch float64) {
	c.Pos = pos
	c.Yaw = yaw
	c.Pitch = pitch
	c.dirty = true
}

func (c *Camera) refresh() {
	// Camera-to-world rotation: yaw about y, then pitch about camera x.
	c.rot = geom.RotY(c.Yaw).Mul(geom.RotX(c.Pitch))
	c.rotInv = c.rot.Transpose()
	c.dirty = false
}

// Cx returns the principal point x coordinate.
func (c *Camera) Cx() float64 { return float64(c.W) / 2 }

// Cy returns the principal point y coordinate.
func (c *Camera) Cy() float64 { return float64(c.H) / 2 }

// ToCamera transforms a world point into the camera frame.
func (c *Camera) ToCamera(p geom.Vec3) geom.Vec3 {
	if c.dirty {
		c.refresh()
	}
	return c.rotInv.Apply(p.Sub(c.Pos))
}

// ToWorldDir rotates a camera-frame direction into the world frame.
func (c *Camera) ToWorldDir(d geom.Vec3) geom.Vec3 {
	if c.dirty {
		c.refresh()
	}
	return c.rot.Apply(d)
}

// Project maps a world point to pixel coordinates. ok is false when the
// point is behind the near plane.
func (c *Camera) Project(p geom.Vec3) (pt geom.Vec2, depth float64, ok bool) {
	q := c.ToCamera(p)
	if q.Z < c.minZ {
		return geom.Vec2{}, 0, false
	}
	return geom.Vec2{
		X: c.F*q.X/q.Z + c.Cx(),
		Y: c.F*q.Y/q.Z + c.Cy(),
	}, q.Z, true
}

// RayDir returns the world-frame direction of the ray through pixel (x, y),
// scaled so that its camera-frame z component is 1. With this scaling the
// ray parameter t of an intersection equals the camera-space depth Z.
func (c *Camera) RayDir(x, y float64) geom.Vec3 {
	d := geom.Vec3{
		X: (x - c.Cx()) / c.F,
		Y: (y - c.Cy()) / c.F,
		Z: 1,
	}
	return c.ToWorldDir(d)
}

// ProjectBox projects the eight corners of an axis-free 3-D box described by
// a center-bottom point, horizontal axes (right, forward) and dimensions,
// and returns the bounding pixel rectangle plus the nearest depth. ok is
// false when every corner is behind the near plane.
func (c *Camera) ProjectBox(bottom geom.Vec3, right, fwd geom.Vec3, w, h, depthDim float64) (imgx.Rect, float64, bool) {
	up := geom.Vec3{X: 0, Y: -1, Z: 0}
	half := right.Scale(w / 2)
	dhalf := fwd.Scale(depthDim / 2)
	minX, minY := 1e18, 1e18
	maxX, maxY := -1e18, -1e18
	nearest := 1e18
	any := false
	for _, su := range []float64{-1, 1} {
		for _, sv := range []float64{0, 1} {
			for _, sw := range []float64{-1, 1} {
				p := bottom.Add(half.Scale(su)).Add(up.Scale(h * sv)).Add(dhalf.Scale(sw))
				pt, depth, ok := c.Project(p)
				if !ok {
					continue
				}
				any = true
				if pt.X < minX {
					minX = pt.X
				}
				if pt.X > maxX {
					maxX = pt.X
				}
				if pt.Y < minY {
					minY = pt.Y
				}
				if pt.Y > maxY {
					maxY = pt.Y
				}
				if depth < nearest {
					nearest = depth
				}
			}
		}
	}
	if !any {
		return imgx.Rect{}, 0, false
	}
	r := imgx.Rect{
		MinX: int(minX), MinY: int(minY),
		MaxX: int(maxX) + 1, MaxY: int(maxY) + 1,
	}
	return r, nearest, true
}
