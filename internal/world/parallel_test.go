package world

import (
	"bytes"
	"math/rand"
	"testing"
)

// renderWith renders a few frames of a standard scene at the given worker
// count and returns the concatenated pixels.
func renderWith(t *testing.T, workers int) []byte {
	t.Helper()
	rng := rand.New(rand.NewSource(1))
	p := NuScenesLike()
	traj := p.Trajectory(rng)
	scene := buildScene(p, traj, rng)
	cam := NewCamera(p.focal(), p.W, p.H)
	rdr := NewRenderer(scene)
	rdr.Workers = workers
	rdr.Illumination = 0.4 // exercise the fused illumination + noise pass
	var out []byte
	for i := 0; i < 3; i++ {
		pose := traj.At(float64(i) / 10)
		cam.SetPose(pose.Pos, pose.Yaw, pose.Pitch)
		frame, _ := rdr.Render(cam, float64(i)/10, int64(42+i))
		out = append(out, frame.Pix...)
	}
	return out
}

// TestRenderParallelMatchesSerial asserts the banded renderer's output is
// pixel-identical at every worker count: bands are fixed-height and each
// band's noise RNG is seeded by band index, never by the worker count.
func TestRenderParallelMatchesSerial(t *testing.T) {
	want := renderWith(t, 1)
	for _, workers := range []int{2, 8} {
		if got := renderWith(t, workers); !bytes.Equal(want, got) {
			t.Errorf("workers=%d: rendered pixels differ from serial", workers)
		}
	}
}

// BenchmarkRenderParallel measures a full frame render with the pool sized
// to GOMAXPROCS, so `go test -cpu 1,4` compares serial and banded execution.
func BenchmarkRenderParallel(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	p := NuScenesLike()
	traj := p.Trajectory(rng)
	scene := buildScene(p, traj, rng)
	cam := NewCamera(p.focal(), p.W, p.H)
	pose := traj.At(0)
	cam.SetPose(pose.Pos, pose.Yaw, pose.Pitch)
	rdr := NewRenderer(scene)
	rdr.Workers = 0 // GOMAXPROCS-sized
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rdr.Render(cam, 0, int64(i))
	}
}
