package world

import (
	"bytes"
	"math/rand"
	"testing"
)

// renderWith renders a few frames of a standard scene at the given worker
// count and returns the concatenated pixels.
func renderWith(t *testing.T, workers int) []byte {
	t.Helper()
	rng := rand.New(rand.NewSource(1))
	p := NuScenesLike()
	traj := p.Trajectory(rng)
	scene := buildScene(p, traj, rng)
	cam := NewCamera(p.focal(), p.W, p.H)
	rdr := NewRenderer(scene)
	rdr.Workers = workers
	rdr.Illumination = 0.4 // exercise the fused illumination + noise pass
	var out []byte
	for i := 0; i < 3; i++ {
		pose := traj.At(float64(i) / 10)
		cam.SetPose(pose.Pos, pose.Yaw, pose.Pitch)
		frame, _ := rdr.Render(cam, float64(i)/10, int64(42+i))
		out = append(out, frame.Pix...)
	}
	return out
}

// TestRenderParallelMatchesSerial asserts the banded renderer's output is
// pixel-identical at every worker count: bands are fixed-height and each
// band's noise RNG is seeded by band index, never by the worker count.
func TestRenderParallelMatchesSerial(t *testing.T) {
	want := renderWith(t, 1)
	for _, workers := range []int{2, 8} {
		if got := renderWith(t, workers); !bytes.Equal(want, got) {
			t.Errorf("workers=%d: rendered pixels differ from serial", workers)
		}
	}
}

// TestBillboardParallelMatchesSerial isolates the billboard pass: sensor
// noise and illumination are disabled so every pixel difference would come
// from billboard rasterization order. Both the pixels and the ground-truth
// boxes (which depend on the per-object "did it rasterize" bit and the final
// z-buffer) must be identical at every worker count.
func TestBillboardParallelMatchesSerial(t *testing.T) {
	render := func(workers int) ([]byte, []GTBox) {
		rng := rand.New(rand.NewSource(5))
		p := RobotCarLike()
		traj := p.Trajectory(rng)
		scene := buildScene(p, traj, rng)
		cam := NewCamera(p.focal(), p.W, p.H)
		rdr := NewRenderer(scene)
		rdr.Workers = workers
		rdr.NoiseStd = 0
		rdr.Illumination = 1
		var pix []byte
		var gts []GTBox
		for i := 0; i < 4; i++ {
			tt := float64(i) / 8
			pose := traj.At(tt)
			cam.SetPose(pose.Pos, pose.Yaw, pose.Pitch)
			frame, gt := rdr.Render(cam, tt, int64(7+i))
			pix = append(pix, frame.Pix...)
			gts = append(gts, gt...)
		}
		return pix, gts
	}
	wantPix, wantGT := render(1)
	for _, workers := range []int{2, 3, 8} {
		gotPix, gotGT := render(workers)
		if !bytes.Equal(wantPix, gotPix) {
			t.Errorf("workers=%d: billboard pixels differ from serial", workers)
		}
		if len(gotGT) != len(wantGT) {
			t.Fatalf("workers=%d: %d ground-truth boxes, serial had %d", workers, len(gotGT), len(wantGT))
		}
		for i := range wantGT {
			if wantGT[i] != gotGT[i] {
				t.Errorf("workers=%d: GT box %d differs: %+v vs %+v", workers, i, gotGT[i], wantGT[i])
			}
		}
	}
}

// BenchmarkRenderParallel measures a full frame render with the pool sized
// to GOMAXPROCS, so `go test -cpu 1,4` compares serial and banded execution.
func BenchmarkRenderParallel(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	p := NuScenesLike()
	traj := p.Trajectory(rng)
	scene := buildScene(p, traj, rng)
	cam := NewCamera(p.focal(), p.W, p.H)
	pose := traj.At(0)
	cam.SetPose(pose.Pos, pose.Yaw, pose.Pitch)
	rdr := NewRenderer(scene)
	rdr.Workers = 0 // GOMAXPROCS-sized
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rdr.Render(cam, 0, int64(i))
	}
}
