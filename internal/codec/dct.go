package codec

// blockSize is the transform block edge; a macroblock holds 2×2 transform
// blocks.
const blockSize = 8

// QStep converts a quantizer parameter (0..51) into a quantization step,
// following the H.264 convention of the step doubling every 6 QP. Served
// from a precomputed table (qstepTable in dct_fixed.go) — the skip
// threshold reads it per macroblock, so the old math.Pow was hot.
func QStep(qp int) float64 {
	return qstepTable[clampQP(qp)]
}

// zigzag8 is the classic 8×8 zigzag scan order.
var zigzag8 = func() [blockSize * blockSize]int {
	var order [blockSize * blockSize]int
	idx := 0
	for s := 0; s < 2*blockSize-1; s++ {
		if s%2 == 0 {
			// Up-right diagonal.
			y := s
			if y > blockSize-1 {
				y = blockSize - 1
			}
			x := s - y
			for y >= 0 && x < blockSize {
				order[idx] = y*blockSize + x
				idx++
				y--
				x++
			}
		} else {
			x := s
			if x > blockSize-1 {
				x = blockSize - 1
			}
			y := s - x
			for x >= 0 && y < blockSize {
				order[idx] = y*blockSize + x
				idx++
				x--
				y++
			}
		}
	}
	return order
}()

// writeCoeffs entropy-codes one quantized block: a coded flag, then
// (run, level) pairs in zigzag order with an end-of-block marker. nz is the
// block's nonzero-level count, tracked by the quantizers so the historical
// emptiness pre-scan over all 64 levels is gone and the zigzag walk stops
// at the last nonzero coefficient. The emitted bits are identical to the
// pre-scan version's.
func writeCoeffs(w *BitWriter, levels *[blockSize * blockSize]int32, nz int) {
	if nz == 0 {
		w.WriteBit(0) // coded-block flag: empty
		return
	}
	w.WriteBit(1)
	run := uint32(0)
	for _, pos := range zigzag8 {
		l := levels[pos]
		if l == 0 {
			run++
			continue
		}
		w.WriteUE(run)
		w.WriteSE(l)
		run = 0
		if nz--; nz == 0 {
			break
		}
	}
	// End of block: an out-of-range run signals no more coefficients.
	w.WriteUE(uint32(blockSize * blockSize))
}

// coeffsBits is the exact length writeCoeffs(levels, nz) appends, computed
// without a writer (the rate-control trials and phase one's arithmetic
// NumBits both depend on it mirroring the writer bit for bit).
func coeffsBits(levels *[blockSize * blockSize]int32, nz int) int {
	if nz == 0 {
		return 1 // coded-block flag: empty
	}
	bits := 1
	run := uint32(0)
	for _, pos := range zigzag8 {
		l := levels[pos]
		if l == 0 {
			run++
			continue
		}
		bits += ueBits(run) + seBits(l)
		run = 0
		if nz--; nz == 0 {
			break
		}
	}
	return bits + ueBits(blockSize*blockSize)
}

// readCoeffs decodes one block written by writeCoeffs.
func readCoeffs(r *BitReader, levels *[blockSize * blockSize]int32) error {
	for i := range levels {
		levels[i] = 0
	}
	coded, err := r.ReadBit()
	if err != nil {
		return err
	}
	if coded == 0 {
		return nil
	}
	idx := 0
	for {
		run, err := r.ReadUE()
		if err != nil {
			return err
		}
		if run >= blockSize*blockSize {
			return nil // end of block
		}
		idx += int(run)
		if idx >= blockSize*blockSize {
			return ErrBitstream
		}
		l, err := r.ReadSE()
		if err != nil {
			return err
		}
		if l == 0 {
			return ErrBitstream
		}
		levels[zigzag8[idx]] = l
		idx++
	}
}
