package codec

import "math"

// blockSize is the transform block edge; a macroblock holds 2×2 transform
// blocks.
const blockSize = 8

// dctBasis holds the 8-point DCT-II basis, precomputed once.
var dctBasis = func() [blockSize][blockSize]float64 {
	var b [blockSize][blockSize]float64
	for k := 0; k < blockSize; k++ {
		a := math.Sqrt(2.0 / blockSize)
		if k == 0 {
			a = math.Sqrt(1.0 / blockSize)
		}
		for n := 0; n < blockSize; n++ {
			b[k][n] = a * math.Cos(math.Pi*(float64(n)+0.5)*float64(k)/blockSize)
		}
	}
	return b
}()

// fdct8 computes the separable 8×8 forward DCT of src into dst.
func fdct8(src *[blockSize * blockSize]float64, dst *[blockSize * blockSize]float64) {
	var tmp [blockSize * blockSize]float64
	// Rows.
	for y := 0; y < blockSize; y++ {
		for k := 0; k < blockSize; k++ {
			s := 0.0
			for n := 0; n < blockSize; n++ {
				s += dctBasis[k][n] * src[y*blockSize+n]
			}
			tmp[y*blockSize+k] = s
		}
	}
	// Columns.
	for x := 0; x < blockSize; x++ {
		for k := 0; k < blockSize; k++ {
			s := 0.0
			for n := 0; n < blockSize; n++ {
				s += dctBasis[k][n] * tmp[n*blockSize+x]
			}
			dst[k*blockSize+x] = s
		}
	}
}

// idct8 computes the inverse 8×8 DCT of src into dst.
func idct8(src *[blockSize * blockSize]float64, dst *[blockSize * blockSize]float64) {
	var tmp [blockSize * blockSize]float64
	// Columns (transpose of forward).
	for x := 0; x < blockSize; x++ {
		for n := 0; n < blockSize; n++ {
			s := 0.0
			for k := 0; k < blockSize; k++ {
				s += dctBasis[k][n] * src[k*blockSize+x]
			}
			tmp[n*blockSize+x] = s
		}
	}
	// Rows.
	for y := 0; y < blockSize; y++ {
		for n := 0; n < blockSize; n++ {
			s := 0.0
			for k := 0; k < blockSize; k++ {
				s += dctBasis[k][n] * tmp[y*blockSize+k]
			}
			dst[y*blockSize+n] = s
		}
	}
}

// QStep converts a quantizer parameter (0..51) into a quantization step,
// following the H.264 convention of the step doubling every 6 QP.
func QStep(qp int) float64 {
	if qp < 0 {
		qp = 0
	}
	if qp > 51 {
		qp = 51
	}
	return 0.625 * math.Pow(2, float64(qp)/6)
}

// quantizeBlock quantizes DCT coefficients with a uniform deadzone
// quantizer and returns them in coeffs (int32 levels).
func quantizeBlock(dct *[blockSize * blockSize]float64, qstep float64, levels *[blockSize * blockSize]int32) {
	for i, c := range dct {
		l := c / qstep
		if l >= 0 {
			levels[i] = int32(l + 0.5)
		} else {
			levels[i] = int32(l - 0.5)
		}
	}
}

// dequantizeBlock reconstructs DCT coefficients from levels.
func dequantizeBlock(levels *[blockSize * blockSize]int32, qstep float64, dct *[blockSize * blockSize]float64) {
	for i, l := range levels {
		dct[i] = float64(l) * qstep
	}
}

// zigzag8 is the classic 8×8 zigzag scan order.
var zigzag8 = func() [blockSize * blockSize]int {
	var order [blockSize * blockSize]int
	idx := 0
	for s := 0; s < 2*blockSize-1; s++ {
		if s%2 == 0 {
			// Up-right diagonal.
			y := s
			if y > blockSize-1 {
				y = blockSize - 1
			}
			x := s - y
			for y >= 0 && x < blockSize {
				order[idx] = y*blockSize + x
				idx++
				y--
				x++
			}
		} else {
			x := s
			if x > blockSize-1 {
				x = blockSize - 1
			}
			y := s - x
			for x >= 0 && y < blockSize {
				order[idx] = y*blockSize + x
				idx++
				x--
				y++
			}
		}
	}
	return order
}()

// writeCoeffs entropy-codes one quantized block: a coded flag, then
// (run, level) pairs in zigzag order with an end-of-block marker.
func writeCoeffs(w *BitWriter, levels *[blockSize * blockSize]int32) {
	any := false
	for _, l := range levels {
		if l != 0 {
			any = true
			break
		}
	}
	if !any {
		w.WriteBit(0) // coded-block flag: empty
		return
	}
	w.WriteBit(1)
	run := uint32(0)
	for _, pos := range zigzag8 {
		l := levels[pos]
		if l == 0 {
			run++
			continue
		}
		w.WriteUE(run)
		w.WriteSE(l)
		run = 0
	}
	// End of block: an out-of-range run signals no more coefficients.
	w.WriteUE(uint32(blockSize * blockSize))
}

// readCoeffs decodes one block written by writeCoeffs.
func readCoeffs(r *BitReader, levels *[blockSize * blockSize]int32) error {
	for i := range levels {
		levels[i] = 0
	}
	coded, err := r.ReadBit()
	if err != nil {
		return err
	}
	if coded == 0 {
		return nil
	}
	idx := 0
	for {
		run, err := r.ReadUE()
		if err != nil {
			return err
		}
		if run >= blockSize*blockSize {
			return nil // end of block
		}
		idx += int(run)
		if idx >= blockSize*blockSize {
			return ErrBitstream
		}
		l, err := r.ReadSE()
		if err != nil {
			return err
		}
		if l == 0 {
			return ErrBitstream
		}
		levels[zigzag8[idx]] = l
		idx++
	}
}
