package codec

import "dive/internal/imgx"

// Rate-control trial passes. A trial only needs the frame's exact bit count
// at a candidate base QP — never its bytes — and every symbol length is
// known arithmetically (ueBits/seBits/coeffsBits mirror the writers
// exactly), so countPass quantizes into stack scratch and sums lengths
// without touching a BitWriter. This is the allocation-free replacement for
// the historical encodePass(final=false) trial: same mode decisions, same
// bit counts (the NumBits cross-check in EmitBitstream and the
// legacy-vs-two-phase tests pin the arithmetic to the writers).

// trialScratch is one trial pass's working set. The per-MB coded-MV array
// feeds the emit-side MV predictor replay; the recon plane exists only for
// intra trials (intra prediction is causal in the reconstruction) and is
// lazily allocated on the first intra trial that uses this scratch. Scratch
// is recycled through Encoder.trials because speculative probes run one
// trial per worker concurrently.
type trialScratch struct {
	mvs   []MV
	recon *imgx.Plane
	// levels/imodes/nz receive one macroblock's quantizeIntraMB output at a
	// time; trials discard them after counting.
	levels [4 * blockSize * blockSize]int32
	imodes [4]uint8
	nz     [4]uint8
}

// getTrial returns recycled or fresh trial scratch.
func (e *Encoder) getTrial() *trialScratch {
	if t := e.trials.Get(); t != nil {
		return t
	}
	return &trialScratch{mvs: make([]MV, e.mbw*e.mbh)}
}

// putTrial releases trial scratch for reuse.
func (e *Encoder) putTrial(t *trialScratch) { e.trials.Put(t) }

// countPass returns the exact number of bits a final encode of frame at
// baseQP would emit. It makes the identical per-MB mode and quantization
// decisions as quantizePass but produces no bitstream, no QP array and (for
// P-frames) no reconstruction. Safe to run concurrently with itself: all
// mutable state lives in the per-call trial scratch.
func (e *Encoder) countPass(frame *imgx.Plane, ftype FrameType, mf *MotionField, dctCache interCache, baseQP int, offsets []int) int {
	t := e.getTrial()
	defer e.putTrial(t)

	bits := ueBits(uint32(ftype)) + ueBits(uint32(baseQP)) +
		ueBits(uint32(e.mbw)) + ueBits(uint32(e.mbh)) + 2 // subpel + deblock flags

	var recon *imgx.Plane
	if ftype == IFrame {
		// Intra reconstruction is written causally in raster order before it
		// is read, so a recycled plane's stale content is never observed.
		if t.recon == nil {
			t.recon = imgx.NewPlane(e.cfg.Width, e.cfg.Height)
		}
		recon = t.recon
	}
	codedMVs := t.mvs
	for by := 0; by < e.mbh; by++ {
		for bx := 0; bx < e.mbw; bx++ {
			i := by*e.mbw + bx
			qp := baseQP
			if offsets != nil {
				qp = clampQP(baseQP + offsets[i])
			}
			px, py := bx*MBSize, by*MBSize

			if ftype == IFrame {
				bits += ueBits(uint32(ModeIntra)) + seBits(int32(qp-baseQP))
				if e.cfg.RefTransform {
					bits += refQuantizeIntraMB(frame, recon, px, py, qp, t.levels[:], t.imodes[:], t.nz[:])
				} else {
					bits += quantizeIntraMB(frame, recon, px, py, qp, t.levels[:], t.imodes[:], t.nz[:])
				}
				continue
			}

			mode := mf.Modes[i]
			mv := mf.MVs[i]
			pred := predictMV(codedMVs, e.mbw, bx, by)
			if mode == ModeSkip && mv == pred {
				bits += ueBits(uint32(ModeSkip))
				codedMVs[i] = pred
				continue
			}
			bits += ueBits(uint32(ModeInter)) +
				seBits(int32(mv.X)-int32(pred.X)) +
				seBits(int32(mv.Y)-int32(pred.Y)) +
				seBits(int32(qp-baseQP))
			codedMVs[i] = mv
			if e.cfg.RefTransform {
				bits += refCountInterMB(dctCache.refMB(i), qp)
			} else {
				bits += countInterMB(dctCache.fixMB(i), qp)
			}
		}
	}
	return bits
}

// countInterMB returns the exact entropy-coded length of one inter
// macroblock's quantized levels without reconstructing anything — the
// cached DCT blocks are QP-independent, so the reciprocal-multiply
// quantization is the only remaining per-QP work.
func countInterMB(dctBlocks [][blockSize * blockSize]int32, qp int) int {
	var levels [blockSize * blockSize]int32
	bits := 0
	for blk := 0; blk < 4; blk++ {
		nz := quantizeBlockFixed(&dctBlocks[blk], qp, &levels)
		bits += coeffsBits(&levels, nz)
	}
	return bits
}
