package codec

import "dive/internal/imgx"

// Half-pel motion support. When Config.SubPel is set, motion vectors are
// expressed in half-pixel units (the paper's x264 baseline searches at
// sub-pixel precision) and motion compensation samples the reference plane
// bilinearly. Sub-pixel vectors roughly halve the quantization noise the
// geometric stages (rotation estimation, Eq. 8 normalization) see.

// sampleHalf reads the reference plane at half-pel position (hx, hy), i.e.
// pixel position (hx/2, hy/2), with bilinear interpolation for odd
// coordinates and border clamping.
func sampleHalf(p *imgx.Plane, hx, hy int) uint8 {
	ix, iy := hx>>1, hy>>1
	oddX, oddY := hx&1 == 1, hy&1 == 1
	switch {
	case !oddX && !oddY:
		return p.At(ix, iy)
	case oddX && !oddY:
		return uint8((int(p.At(ix, iy)) + int(p.At(ix+1, iy)) + 1) / 2)
	case !oddX && oddY:
		return uint8((int(p.At(ix, iy)) + int(p.At(ix, iy+1)) + 1) / 2)
	default:
		return uint8((int(p.At(ix, iy)) + int(p.At(ix+1, iy)) +
			int(p.At(ix, iy+1)) + int(p.At(ix+1, iy+1)) + 2) / 4)
	}
}

// sadHalf computes the SAD between the w×h block at (ax, ay) in a and the
// half-pel displaced block at half-pel origin (hbx, hby) in b, with early
// exit (checked after each completed row, matching imgx.SAD).
func sadHalf(a *imgx.Plane, ax, ay int, b *imgx.Plane, hbx, hby, w, h, earlyExit int) int {
	// Fast path: even coordinates are plain integer SAD.
	if hbx&1 == 0 && hby&1 == 0 {
		return imgx.SAD(a, ax, ay, b, hbx>>1, hby>>1, w, h, earlyExit)
	}
	ix0, iy0 := hbx>>1, hby>>1
	// Interior fast path: when every integer sample the bilinear taps touch
	// (columns ix0..ix0+w, rows iy0..iy0+h — conservatively including the +1
	// tap even on the even axis) is inside b, interpolation reads row slices
	// directly instead of going through the clamping sampleHalf, with the
	// identical rounding arithmetic and branchless absolute values.
	if ix0 >= 0 && iy0 >= 0 && ix0+w < b.W && iy0+h < b.H {
		oddX, oddY := hbx&1 == 1, hby&1 == 1
		sum := 0
		for y := 0; y < h; y++ {
			ra := a.Pix[(ay+y)*a.W+ax : (ay+y)*a.W+ax+w]
			iy := iy0 + y
			r0 := b.Pix[iy*b.W+ix0 : iy*b.W+ix0+w+1]
			switch {
			case oddX && !oddY:
				for x := 0; x < w; x++ {
					d := int(ra[x]) - (int(r0[x])+int(r0[x+1])+1)/2
					m := d >> 63
					sum += (d + m) ^ m
				}
			case !oddX && oddY:
				r1 := b.Pix[(iy+1)*b.W+ix0 : (iy+1)*b.W+ix0+w+1]
				for x := 0; x < w; x++ {
					d := int(ra[x]) - (int(r0[x])+int(r1[x])+1)/2
					m := d >> 63
					sum += (d + m) ^ m
				}
			default: // odd in both axes
				r1 := b.Pix[(iy+1)*b.W+ix0 : (iy+1)*b.W+ix0+w+1]
				for x := 0; x < w; x++ {
					d := int(ra[x]) - (int(r0[x])+int(r0[x+1])+int(r1[x])+int(r1[x+1])+2)/4
					m := d >> 63
					sum += (d + m) ^ m
				}
			}
			if sum >= earlyExit {
				return sum
			}
		}
		return sum
	}
	sum := 0
	for y := 0; y < h; y++ {
		ra := a.Pix[(ay+y)*a.W+ax : (ay+y)*a.W+ax+w]
		for x := 0; x < w; x++ {
			d := int(ra[x]) - int(sampleHalf(b, hbx+2*x, hby+2*y))
			if d < 0 {
				d = -d
			}
			sum += d
		}
		if sum >= earlyExit {
			return sum
		}
	}
	return sum
}

// compensateHalf copies the half-pel displaced reference block into dst.
// (px, py) is the macroblock origin in pixels and mv a half-pel vector.
func compensateHalf(dst, ref *imgx.Plane, px, py int, mv MV) {
	hbx := px*2 + int(mv.X)
	hby := py*2 + int(mv.Y)
	for y := 0; y < MBSize; y++ {
		ty := py + y
		if ty < 0 || ty >= dst.H {
			continue
		}
		for x := 0; x < MBSize; x++ {
			tx := px + x
			if tx < 0 || tx >= dst.W {
				continue
			}
			dst.Pix[ty*dst.W+tx] = sampleHalf(ref, hbx+2*x, hby+2*y)
		}
	}
}

// halfPelMargin is the minimum SAD improvement a half-pel candidate must
// deliver over the integer-pel incumbent. Bilinear interpolation low-passes
// the reference, which on noise-dominated content lowers SAD by roughly
// 10-15%% for ANY offset; the margin therefore also scales with the
// incumbent SAD (see refineHalf), otherwise night footage would report
// spurious half-pel motion on every macroblock.
const halfPelMargin = 48

// refineHalf polishes an integer-pel vector (given in half-pel units, even
// coordinates) by evaluating the 8 half-pel neighbors. Returns the best
// vector in half-pel units and its SAD.
func refineHalf(cur, ref *imgx.Plane, mbx, mby int, mv MV, bestSAD int) (MV, int) {
	base := mv
	margin := halfPelMargin
	if adaptive := bestSAD >> 2; adaptive > margin {
		margin = adaptive
	}
	threshold := bestSAD - margin
	for dy := -1; dy <= 1; dy++ {
		for dx := -1; dx <= 1; dx++ {
			if dx == 0 && dy == 0 {
				continue
			}
			cand := MV{base.X + int16(dx), base.Y + int16(dy)}
			s := sadHalf(cur, mbx, mby, ref, mbx*2+int(cand.X), mby*2+int(cand.Y), MBSize, MBSize, threshold)
			if s < threshold {
				threshold = s
				bestSAD = s
				mv = cand
			}
		}
	}
	return mv, bestSAD
}
