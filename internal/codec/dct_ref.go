package codec

import (
	"math"

	"dive/internal/imgx"
)

// Float64 reference path. This file keeps the pre-fixed-point transform,
// quantizer and intra-prediction implementations verbatim, for two
// consumers only: the cross-check tests that bound the fixed-point kernels'
// divergence, and the transform-parity experiment
// (experiments.TransformParity), which re-runs the full pipeline with
// Config.RefTransform set to measure the AP/bitrate cost of the switch.
// With RefTransform set the encoder/decoder reproduce the pre-switch
// bitstreams exactly; production never enters this file otherwise.

// dctBasis holds the 8-point DCT-II basis, precomputed once.
var dctBasis = func() [blockSize][blockSize]float64 {
	var b [blockSize][blockSize]float64
	for k := 0; k < blockSize; k++ {
		a := math.Sqrt(2.0 / blockSize)
		if k == 0 {
			a = math.Sqrt(1.0 / blockSize)
		}
		for n := 0; n < blockSize; n++ {
			b[k][n] = a * math.Cos(math.Pi*(float64(n)+0.5)*float64(k)/blockSize)
		}
	}
	return b
}()

// refFdct8 computes the separable 8×8 forward DCT of src into dst.
func refFdct8(src *[blockSize * blockSize]float64, dst *[blockSize * blockSize]float64) {
	var tmp [blockSize * blockSize]float64
	// Rows.
	for y := 0; y < blockSize; y++ {
		for k := 0; k < blockSize; k++ {
			s := 0.0
			for n := 0; n < blockSize; n++ {
				s += dctBasis[k][n] * src[y*blockSize+n]
			}
			tmp[y*blockSize+k] = s
		}
	}
	// Columns.
	for x := 0; x < blockSize; x++ {
		for k := 0; k < blockSize; k++ {
			s := 0.0
			for n := 0; n < blockSize; n++ {
				s += dctBasis[k][n] * tmp[n*blockSize+x]
			}
			dst[k*blockSize+x] = s
		}
	}
}

// refIdct8 computes the inverse 8×8 DCT of src into dst.
func refIdct8(src *[blockSize * blockSize]float64, dst *[blockSize * blockSize]float64) {
	var tmp [blockSize * blockSize]float64
	// Columns (transpose of forward).
	for x := 0; x < blockSize; x++ {
		for n := 0; n < blockSize; n++ {
			s := 0.0
			for k := 0; k < blockSize; k++ {
				s += dctBasis[k][n] * src[k*blockSize+x]
			}
			tmp[n*blockSize+x] = s
		}
	}
	// Rows.
	for y := 0; y < blockSize; y++ {
		for n := 0; n < blockSize; n++ {
			s := 0.0
			for k := 0; k < blockSize; k++ {
				s += dctBasis[k][n] * tmp[y*blockSize+k]
			}
			dst[y*blockSize+n] = s
		}
	}
}

// refQuantizeBlock quantizes float DCT coefficients with a uniform deadzone
// quantizer (float division, round half away from zero) and returns the
// number of nonzero levels.
func refQuantizeBlock(dct *[blockSize * blockSize]float64, qstep float64, levels *[blockSize * blockSize]int32) int {
	nz := 0
	for i, c := range dct {
		l := c / qstep
		if l >= 0 {
			levels[i] = int32(l + 0.5)
		} else {
			levels[i] = int32(l - 0.5)
		}
		if levels[i] != 0 {
			nz++
		}
	}
	return nz
}

// refDequantizeBlock reconstructs float DCT coefficients from levels.
func refDequantizeBlock(levels *[blockSize * blockSize]int32, qstep float64, dct *[blockSize * blockSize]float64) {
	for i, l := range levels {
		dct[i] = float64(l) * qstep
	}
}

// refSample reads the reference pixel at (cx, cy) displaced by mv as a
// float, matching the pre-switch arithmetic (the value is integral either
// way; the fixed path uses refSampleI).
func refSample(ref *imgx.Plane, cx, cy int, mv MV, subpel bool) float64 {
	return float64(refSampleI(ref, cx, cy, mv, subpel))
}

// refIntraPredict fills pred with the float prediction for the 8×8 block at
// (px, py) under the given mode, reading reconstructed causal neighbors.
func refIntraPredict(recon *imgx.Plane, px, py, mode int, pred *[blockSize * blockSize]float64) {
	switch {
	case mode == intraModeVertical && py > 0:
		for x := 0; x < blockSize; x++ {
			v := float64(recon.At(px+x, py-1))
			for y := 0; y < blockSize; y++ {
				pred[y*blockSize+x] = v
			}
		}
	case mode == intraModeHorizontal && px > 0:
		for y := 0; y < blockSize; y++ {
			v := float64(recon.At(px-1, py+y))
			for x := 0; x < blockSize; x++ {
				pred[y*blockSize+x] = v
			}
		}
	default:
		dc := refIntraDC(recon, px, py)
		for i := range pred {
			pred[i] = dc
		}
	}
}

// refChooseIntraMode returns the mode with the smallest absolute prediction
// residual for the block at (px, py), using the float predictors.
func refChooseIntraMode(cur, recon *imgx.Plane, px, py int) int {
	bestMode, bestSAD := intraModeDC, 1<<30
	var pred [blockSize * blockSize]float64
	for mode := 0; mode < numIntraModes; mode++ {
		refIntraPredict(recon, px, py, mode, &pred)
		sad := 0
		for y := 0; y < blockSize && sad < bestSAD; y++ {
			for x := 0; x < blockSize; x++ {
				d := int(float64(cur.At(px+x, py+y)) - pred[y*blockSize+x])
				if d < 0 {
					d = -d
				}
				sad += d
			}
		}
		if sad < bestSAD {
			bestSAD = sad
			bestMode = mode
		}
	}
	return bestMode
}

// refIntraDC is the float DC predictor: the un-rounded neighbor mean (the
// fixed path rounds to the nearest integer).
func refIntraDC(recon *imgx.Plane, px, py int) float64 {
	sum, n := 0, 0
	if py > 0 {
		for x := 0; x < blockSize; x++ {
			sum += int(recon.At(px+x, py-1))
			n++
		}
	}
	if px > 0 {
		for y := 0; y < blockSize; y++ {
			sum += int(recon.At(px-1, py+y))
			n++
		}
	}
	if n == 0 {
		return 128
	}
	return float64(sum) / float64(n)
}

// refEncodeInterMB is the float encodeInterMB: quantize and entropy-code one
// inter macroblock from its cached float DCT blocks and, on the final pass,
// reconstruct it.
func refEncodeInterMB(w *BitWriter, dctBlocks [][blockSize * blockSize]float64, ref, recon *imgx.Plane, px, py int, mv MV, qp int, subpel, final bool) {
	qstep := qstepTable[qp]
	var dct, res [blockSize * blockSize]float64
	var levels [blockSize * blockSize]int32
	blk := 0
	for by := 0; by < MBSize; by += blockSize {
		for bx := 0; bx < MBSize; bx += blockSize {
			nz := refQuantizeBlock(&dctBlocks[blk], qstep, &levels)
			blk++
			writeCoeffs(w, &levels, nz)
			if !final {
				continue
			}
			refDequantizeBlock(&levels, qstep, &dct)
			refIdct8(&dct, &res)
			for y := 0; y < blockSize; y++ {
				for x := 0; x < blockSize; x++ {
					cx, cy := px+bx+x, py+by+y
					v := refSample(ref, cx, cy, mv, subpel) + res[y*blockSize+x]
					recon.Set(cx, cy, clampPix(v))
				}
			}
		}
	}
}

// refEncodeIntraMB is the float encodeIntraMB: per-block directional
// prediction from reconstructed neighbors.
func refEncodeIntraMB(w *BitWriter, cur, recon *imgx.Plane, px, py int, qp int) {
	qstep := qstepTable[qp]
	var pred, res, dct [blockSize * blockSize]float64
	var levels [blockSize * blockSize]int32
	for by := 0; by < MBSize; by += blockSize {
		for bx := 0; bx < MBSize; bx += blockSize {
			mode := refChooseIntraMode(cur, recon, px+bx, py+by)
			w.WriteUE(uint32(mode))
			refIntraPredict(recon, px+bx, py+by, mode, &pred)
			for y := 0; y < blockSize; y++ {
				for x := 0; x < blockSize; x++ {
					res[y*blockSize+x] = float64(cur.At(px+bx+x, py+by+y)) - pred[y*blockSize+x]
				}
			}
			refFdct8(&res, &dct)
			nz := refQuantizeBlock(&dct, qstep, &levels)
			writeCoeffs(w, &levels, nz)
			refDequantizeBlock(&levels, qstep, &dct)
			refIdct8(&dct, &res)
			for y := 0; y < blockSize; y++ {
				for x := 0; x < blockSize; x++ {
					recon.Set(px+bx+x, py+by+y, clampPix(pred[y*blockSize+x]+res[y*blockSize+x]))
				}
			}
		}
	}
}

// refQuantizeInterMB is the float quantizeInterMB: quantize one inter
// macroblock into out/nzOut, reconstruct it and return the exact bit cost.
func refQuantizeInterMB(dctBlocks [][blockSize * blockSize]float64, ref, recon *imgx.Plane, px, py int, mv MV, qp int, subpel bool, out []int32, nzOut []uint8) int {
	qstep := qstepTable[qp]
	var dct, res [blockSize * blockSize]float64
	bits := 0
	blk := 0
	for by := 0; by < MBSize; by += blockSize {
		for bx := 0; bx < MBSize; bx += blockSize {
			off := blk * blockSize * blockSize
			levels := (*[blockSize * blockSize]int32)(out[off : off+blockSize*blockSize])
			nz := refQuantizeBlock(&dctBlocks[blk], qstep, levels)
			nzOut[blk] = uint8(nz)
			bits += coeffsBits(levels, nz)
			blk++
			refDequantizeBlock(levels, qstep, &dct)
			refIdct8(&dct, &res)
			for y := 0; y < blockSize; y++ {
				for x := 0; x < blockSize; x++ {
					cx, cy := px+bx+x, py+by+y
					v := refSample(ref, cx, cy, mv, subpel) + res[y*blockSize+x]
					recon.Set(cx, cy, clampPix(v))
				}
			}
		}
	}
	return bits
}

// refQuantizeIntraMB is the float quantizeIntraMB.
func refQuantizeIntraMB(cur, recon *imgx.Plane, px, py int, qp int, out []int32, modesOut, nzOut []uint8) int {
	qstep := qstepTable[qp]
	var pred, res, dct [blockSize * blockSize]float64
	bits := 0
	blk := 0
	for by := 0; by < MBSize; by += blockSize {
		for bx := 0; bx < MBSize; bx += blockSize {
			mode := refChooseIntraMode(cur, recon, px+bx, py+by)
			modesOut[blk] = uint8(mode)
			bits += ueBits(uint32(mode))
			refIntraPredict(recon, px+bx, py+by, mode, &pred)
			for y := 0; y < blockSize; y++ {
				for x := 0; x < blockSize; x++ {
					res[y*blockSize+x] = float64(cur.At(px+bx+x, py+by+y)) - pred[y*blockSize+x]
				}
			}
			refFdct8(&res, &dct)
			off := blk * blockSize * blockSize
			levels := (*[blockSize * blockSize]int32)(out[off : off+blockSize*blockSize])
			nz := refQuantizeBlock(&dct, qstep, levels)
			nzOut[blk] = uint8(nz)
			bits += coeffsBits(levels, nz)
			blk++
			refDequantizeBlock(levels, qstep, &dct)
			refIdct8(&dct, &res)
			for y := 0; y < blockSize; y++ {
				for x := 0; x < blockSize; x++ {
					recon.Set(px+bx+x, py+by+y, clampPix(pred[y*blockSize+x]+res[y*blockSize+x]))
				}
			}
		}
	}
	return bits
}

// refCountInterMB is the float countInterMB: exact entropy-coded length of
// one inter macroblock's levels, no reconstruction.
func refCountInterMB(dctBlocks [][blockSize * blockSize]float64, qp int) int {
	qstep := qstepTable[qp]
	var levels [blockSize * blockSize]int32
	bits := 0
	for blk := 0; blk < 4; blk++ {
		nz := refQuantizeBlock(&dctBlocks[blk], qstep, &levels)
		bits += coeffsBits(&levels, nz)
	}
	return bits
}

// refDecodeInterMB is the float decodeInterMB.
func refDecodeInterMB(r *BitReader, ref, recon *imgx.Plane, px, py int, mv MV, qp int, subpel bool) error {
	qstep := qstepTable[qp]
	var dct, res [blockSize * blockSize]float64
	var levels [blockSize * blockSize]int32
	for by := 0; by < MBSize; by += blockSize {
		for bx := 0; bx < MBSize; bx += blockSize {
			if err := readCoeffs(r, &levels); err != nil {
				return err
			}
			refDequantizeBlock(&levels, qstep, &dct)
			refIdct8(&dct, &res)
			for y := 0; y < blockSize; y++ {
				for x := 0; x < blockSize; x++ {
					cx, cy := px+bx+x, py+by+y
					v := refSample(ref, cx, cy, mv, subpel) + res[y*blockSize+x]
					recon.Set(cx, cy, clampPix(v))
				}
			}
		}
	}
	return nil
}

// refDecodeIntraMB is the float decodeIntraMB.
func refDecodeIntraMB(r *BitReader, recon *imgx.Plane, px, py int, qp int) error {
	qstep := qstepTable[qp]
	var pred, dct, res [blockSize * blockSize]float64
	var levels [blockSize * blockSize]int32
	for by := 0; by < MBSize; by += blockSize {
		for bx := 0; bx < MBSize; bx += blockSize {
			m, err := r.ReadUE()
			if err != nil {
				return err
			}
			if m >= numIntraModes {
				return errBadIntraMode(m)
			}
			if err := readCoeffs(r, &levels); err != nil {
				return err
			}
			refIntraPredict(recon, px+bx, py+by, int(m), &pred)
			refDequantizeBlock(&levels, qstep, &dct)
			refIdct8(&dct, &res)
			for y := 0; y < blockSize; y++ {
				for x := 0; x < blockSize; x++ {
					recon.Set(px+bx+x, py+by+y, clampPix(pred[y*blockSize+x]+res[y*blockSize+x]))
				}
			}
		}
	}
	return nil
}

func clampPix(v float64) uint8 {
	if v < 0 {
		return 0
	}
	if v > 255 {
		return 255
	}
	return uint8(v + 0.5)
}
