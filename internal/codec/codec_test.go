package codec

import (
	"math"
	"math/rand"
	"testing"

	"dive/internal/imgx"
)

// texturedFrame builds a frame with smooth gradients plus noise so the
// codec has realistic content to chew on.
func texturedFrame(w, h int, seed int64) *imgx.Plane {
	rng := rand.New(rand.NewSource(seed))
	p := imgx.NewPlane(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			v := 96 + 64*math.Sin(float64(x)/17) + 48*math.Cos(float64(y)/11)
			v += rng.NormFloat64() * 3
			p.Set(x, y, clampPix(v))
		}
	}
	return p
}

// shiftFrame translates a frame by (dx, dy) with border clamping.
func shiftFrame(p *imgx.Plane, dx, dy int) *imgx.Plane {
	q := imgx.NewPlane(p.W, p.H)
	for y := 0; y < p.H; y++ {
		for x := 0; x < p.W; x++ {
			q.Set(x, y, p.At(x-dx, y-dy))
		}
	}
	return q
}

func newTestEncoder(t *testing.T, w, h int) *Encoder {
	t.Helper()
	e, err := NewEncoder(DefaultConfig(w, h))
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestNewEncoderValidation(t *testing.T) {
	if _, err := NewEncoder(DefaultConfig(100, 96)); err == nil {
		t.Error("expected error for non-multiple-of-16 width")
	}
	cfg := DefaultConfig(64, 64)
	cfg.SearchRange = 0
	if _, err := NewEncoder(cfg); err == nil {
		t.Error("expected error for zero search range")
	}
	cfg = DefaultConfig(64, 64)
	cfg.Method = MEMethod(99)
	if _, err := NewEncoder(cfg); err == nil {
		t.Error("expected error for bad ME method")
	}
	if _, err := NewDecoder(DefaultConfig(100, 96)); err == nil {
		t.Error("expected decoder error for bad size")
	}
}

func TestEncodeDecodeRoundTripMatchesRecon(t *testing.T) {
	w, h := 64, 48
	enc := newTestEncoder(t, w, h)
	dec, _ := NewDecoder(DefaultConfig(w, h))
	f0 := texturedFrame(w, h, 1)
	f1 := shiftFrame(f0, 3, 1)
	f2 := shiftFrame(f0, 6, 2)

	for i, f := range []*imgx.Plane{f0, f1, f2} {
		ef, err := enc.Encode(f, EncodeOptions{BaseQP: 20})
		if err != nil {
			t.Fatal(err)
		}
		df, err := dec.Decode(ef.Data)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		// Decoder output must be bit-exact with the encoder's recon.
		if imgx.MSE(df.Image, enc.Reconstructed()) != 0 {
			t.Fatalf("frame %d: decoder drift from encoder reconstruction", i)
		}
		wantType := PFrame
		if i == 0 {
			wantType = IFrame
		}
		if ef.Type != wantType || df.Type != wantType {
			t.Fatalf("frame %d type = %v/%v, want %v", i, ef.Type, df.Type, wantType)
		}
	}
}

func TestQualityImprovesWithLowerQP(t *testing.T) {
	w, h := 64, 64
	src := texturedFrame(w, h, 2)
	prevMSE := math.Inf(1)
	prevBits := 0
	for _, qp := range []int{44, 32, 20, 8} {
		enc := newTestEncoder(t, w, h)
		ef, err := enc.Encode(src, EncodeOptions{BaseQP: qp})
		if err != nil {
			t.Fatal(err)
		}
		mse := imgx.MSE(src, enc.Reconstructed())
		if mse > prevMSE {
			t.Errorf("QP %d: MSE %v worse than higher QP (%v)", qp, mse, prevMSE)
		}
		// Bits must grow (weakly) as QP drops.
		if ef.NumBits < prevBits {
			t.Errorf("QP %d: bits %d below higher-QP %d", qp, ef.NumBits, prevBits)
		}
		prevMSE, prevBits = mse, ef.NumBits
	}
	// Near-lossless at QP 0.
	enc := newTestEncoder(t, w, h)
	_, err := enc.Encode(src, EncodeOptions{BaseQP: 0})
	if err != nil {
		t.Fatal(err)
	}
	if psnr := imgx.PSNR(imgx.MSE(src, enc.Reconstructed())); psnr < 45 {
		t.Errorf("QP0 PSNR = %v, want near-lossless", psnr)
	}
}

func TestMotionEstimationFindsTranslation(t *testing.T) {
	w, h := 96, 96
	base := texturedFrame(w, h, 3)
	for _, m := range AllMEMethods() {
		cfg := DefaultConfig(w, h)
		cfg.Method = m
		enc, _ := NewEncoder(cfg)
		if _, err := enc.Encode(base, EncodeOptions{BaseQP: 8}); err != nil {
			t.Fatal(err)
		}
		shifted := shiftFrame(base, 5, -3)
		ef, err := enc.Encode(shifted, EncodeOptions{BaseQP: 8})
		if err != nil {
			t.Fatal(err)
		}
		// Interior MBs should find MV ≈ (5, -3): block content moved right
		// and up means the match in the reference is at (-5, +3) pixels
		// (scaled by the sub-pel denominator). Half-pel refinement against
		// a quantized reference may legitimately land half a pixel off, so
		// accept vectors within one half-pel unit of truth.
		sc := int(ef.Motion.Scale)
		good, total := 0, 0
		for by := 1; by < ef.MBH-1; by++ {
			for bx := 1; bx < ef.MBW-1; bx++ {
				mv := ef.Motion.At(bx, by)
				total++
				dx := absInt(int(mv.X) + 5*sc)
				dy := absInt(int(mv.Y) - 3*sc)
				if dx <= sc/2 && dy <= sc/2 {
					good++
				}
			}
		}
		if float64(good) < 0.75*float64(total) {
			t.Errorf("%v: only %d/%d interior MBs found the true motion", m, good, total)
		}
	}
}

func TestSkipModeOnStaticContent(t *testing.T) {
	w, h := 64, 64
	src := texturedFrame(w, h, 4)
	enc := newTestEncoder(t, w, h)
	if _, err := enc.Encode(src, EncodeOptions{BaseQP: 12}); err != nil {
		t.Fatal(err)
	}
	// Identical frame: everything should skip and η should be 0.
	ef, err := enc.Encode(src, EncodeOptions{BaseQP: 12})
	if err != nil {
		t.Fatal(err)
	}
	skips := 0
	for _, m := range ef.Motion.Modes {
		if m == ModeSkip {
			skips++
		}
	}
	if skips < len(ef.Motion.Modes)*9/10 {
		t.Errorf("only %d/%d MBs skipped on a static frame", skips, len(ef.Motion.Modes))
	}
	if eta := ef.Motion.NonZeroRatio(); eta > 0.05 {
		t.Errorf("η = %v on static content, want ≈ 0", eta)
	}
	// Skipped frames are tiny.
	if ef.NumBits > w*h/4 {
		t.Errorf("static P-frame used %d bits", ef.NumBits)
	}
}

func TestNonZeroRatioOnMovingContent(t *testing.T) {
	w, h := 64, 64
	src := texturedFrame(w, h, 5)
	enc := newTestEncoder(t, w, h)
	if _, err := enc.Encode(src, EncodeOptions{BaseQP: 12}); err != nil {
		t.Fatal(err)
	}
	ef, err := enc.Encode(shiftFrame(src, 4, 0), EncodeOptions{BaseQP: 12})
	if err != nil {
		t.Fatal(err)
	}
	if eta := ef.Motion.NonZeroRatio(); eta < 0.5 {
		t.Errorf("η = %v on moving content, want high", eta)
	}
}

func TestRateControlMeetsBudget(t *testing.T) {
	w, h := 96, 96
	enc := newTestEncoder(t, w, h)
	src := texturedFrame(w, h, 6)
	for _, budget := range []int{20000, 8000, 3000} {
		ef, err := enc.Encode(texturedFrame(w, h, int64(budget)), EncodeOptions{TargetBits: budget})
		if err != nil {
			t.Fatal(err)
		}
		if ef.NumBits > budget && ef.BaseQP < 51 {
			t.Errorf("budget %d: used %d bits at QP %d", budget, ef.NumBits, ef.BaseQP)
		}
	}
	_ = src
}

func TestRateControlPrefersLowQP(t *testing.T) {
	// A huge budget should drive QP to (near) zero.
	w, h := 64, 64
	enc := newTestEncoder(t, w, h)
	ef, err := enc.Encode(texturedFrame(w, h, 7), EncodeOptions{TargetBits: 10_000_000})
	if err != nil {
		t.Fatal(err)
	}
	if ef.BaseQP != 0 {
		t.Errorf("unconstrained QP = %d, want 0", ef.BaseQP)
	}
}

func TestQPOffsetsChangeLocalQuality(t *testing.T) {
	w, h := 96, 96
	src := texturedFrame(w, h, 8)
	cfg := DefaultConfig(w, h)
	enc, _ := NewEncoder(cfg)
	mbw, mbh := enc.MBDims()
	// Left half clean (offset 0), right half crushed (offset +30).
	offsets := make([]int, mbw*mbh)
	for by := 0; by < mbh; by++ {
		for bx := 0; bx < mbw; bx++ {
			if bx >= mbw/2 {
				offsets[by*mbw+bx] = 30
			}
		}
	}
	ef, err := enc.Encode(src, EncodeOptions{BaseQP: 6, QPOffsets: offsets})
	if err != nil {
		t.Fatal(err)
	}
	rec := enc.Reconstructed()
	left := imgx.RegionMSE(src, rec, imgx.Rect{MinX: 0, MinY: 0, MaxX: w / 2, MaxY: h})
	right := imgx.RegionMSE(src, rec, imgx.Rect{MinX: w / 2, MinY: 0, MaxX: w, MaxY: h})
	if right < left*4 {
		t.Errorf("offset region MSE %v not clearly worse than clean %v", right, left)
	}
	// Per-MB QPs must reflect the offsets.
	if ef.QPs[0] != 6 || ef.QPs[mbw-1] != 36 {
		t.Errorf("QPs = %d,%d want 6,36", ef.QPs[0], ef.QPs[mbw-1])
	}
	// Decoder agrees.
	dec, _ := NewDecoder(cfg)
	df, err := dec.Decode(ef.Data)
	if err != nil {
		t.Fatal(err)
	}
	if imgx.MSE(df.Image, rec) != 0 {
		t.Error("decoder mismatch with QP offsets")
	}
}

func TestGoPStructure(t *testing.T) {
	w, h := 32, 32
	cfg := DefaultConfig(w, h)
	cfg.GoPSize = 3
	enc, _ := NewEncoder(cfg)
	var types []FrameType
	for i := 0; i < 7; i++ {
		ef, err := enc.Encode(texturedFrame(w, h, int64(i)), EncodeOptions{BaseQP: 24})
		if err != nil {
			t.Fatal(err)
		}
		types = append(types, ef.Type)
	}
	want := []FrameType{IFrame, PFrame, PFrame, IFrame, PFrame, PFrame, IFrame}
	for i := range want {
		if types[i] != want[i] {
			t.Fatalf("frame %d type = %v, want %v (got %v)", i, types[i], want[i], types)
		}
	}
	// ForceIFrame overrides.
	ef, _ := enc.Encode(texturedFrame(w, h, 99), EncodeOptions{BaseQP: 24, ForceIFrame: true})
	if ef.Type != IFrame {
		t.Error("ForceIFrame ignored")
	}
}

func TestEncodeValidation(t *testing.T) {
	enc := newTestEncoder(t, 32, 32)
	if _, err := enc.Encode(imgx.NewPlane(64, 64), EncodeOptions{}); err == nil {
		t.Error("expected size mismatch error")
	}
	if _, err := enc.Encode(imgx.NewPlane(32, 32), EncodeOptions{QPOffsets: make([]int, 3)}); err == nil {
		t.Error("expected offset length error")
	}
}

func TestDecoderErrors(t *testing.T) {
	dec, _ := NewDecoder(DefaultConfig(32, 32))
	if _, err := dec.Decode([]byte{}); err == nil {
		t.Error("expected error for empty stream")
	}
	if _, err := dec.Decode([]byte{0xFF, 0xFF, 0xFF}); err == nil {
		t.Error("expected error for garbage")
	}
	// P-frame before I-frame: craft by encoding two frames and feeding the
	// second first.
	enc := newTestEncoder(t, 32, 32)
	f := texturedFrame(32, 32, 1)
	enc.Encode(f, EncodeOptions{BaseQP: 20})
	ef2, _ := enc.Encode(shiftFrame(f, 2, 0), EncodeOptions{BaseQP: 20})
	if _, err := dec.Decode(ef2.Data); err == nil {
		t.Error("expected error for P-frame without reference")
	}
}

func TestAnalyzeMotionCaching(t *testing.T) {
	enc := newTestEncoder(t, 32, 32)
	f0 := texturedFrame(32, 32, 1)
	if mf := enc.AnalyzeMotion(f0); mf != nil {
		t.Error("motion field before any reference should be nil")
	}
	enc.Encode(f0, EncodeOptions{BaseQP: 20})
	f1 := shiftFrame(f0, 2, 0)
	mf1 := enc.AnalyzeMotion(f1)
	mf2 := enc.AnalyzeMotion(f1)
	if mf1 != mf2 {
		t.Error("repeated analysis of the same frame should be cached")
	}
	// Encode reuses and then invalidates the cache.
	enc.Encode(f1, EncodeOptions{BaseQP: 20})
	if enc.motion != nil {
		t.Error("cache should be invalidated after Encode")
	}
}

func TestMEMethodNames(t *testing.T) {
	for _, m := range AllMEMethods() {
		got, ok := ParseMEMethod(m.String())
		if !ok || got != m {
			t.Errorf("round trip failed for %v", m)
		}
	}
	if _, ok := ParseMEMethod("bogus"); ok {
		t.Error("bogus method parsed")
	}
	if MEMethod(0).String() != "unknown" {
		t.Error("zero method name")
	}
}

func TestFrameTypeString(t *testing.T) {
	if IFrame.String() != "I" || PFrame.String() != "P" {
		t.Error("FrameType strings wrong")
	}
}

func TestPredictMVMedian(t *testing.T) {
	mvs := []MV{{10, 0}, {2, 4}, {6, 8}, {0, 0}}
	// Grid 2x2, predict for (1,1): left = (6,8)? layout: index 2 is (0,1),
	// 3 is (1,1). Neighbors of (1,1): left (0,1)=(6,8), top (1,0)=(2,4);
	// no top-right. Median of two → average (4,6).
	got := predictMV(mvs, 2, 1, 1)
	if got != (MV{4, 6}) {
		t.Errorf("predictMV = %v", got)
	}
	// Corner has no neighbors.
	if got := predictMV(mvs, 2, 0, 0); got != (MV{}) {
		t.Errorf("corner predictor = %v", got)
	}
	// Full median-of-3.
	mvs3 := []MV{{1, 1}, {5, 9}, {3, 2}, {0, 0}, {0, 0}, {0, 0}}
	got = predictMV(mvs3, 3, 1, 1) // left (0,1)... index layout 3x2
	_ = got
	if m := median3(5, 1, 3); m != 3 {
		t.Errorf("median3 = %d", m)
	}
}

func TestSubPelOffRoundTrip(t *testing.T) {
	// Full-pel-only streams must decode bit-exactly too (the header flag
	// switches the decoder's compensation path).
	cfg := DefaultConfig(48, 48)
	cfg.SubPel = false
	enc, _ := NewEncoder(cfg)
	dec, _ := NewDecoder(cfg)
	f0 := texturedFrame(48, 48, 11)
	f1 := shiftFrame(f0, 2, 1)
	for i, f := range []*imgx.Plane{f0, f1} {
		ef, err := enc.Encode(f, EncodeOptions{BaseQP: 18})
		if err != nil {
			t.Fatal(err)
		}
		if ef.Motion != nil && ef.Motion.Scale != 1 {
			t.Errorf("frame %d: scale = %d, want 1", i, ef.Motion.Scale)
		}
		df, err := dec.Decode(ef.Data)
		if err != nil {
			t.Fatal(err)
		}
		if imgx.MSE(df.Image, enc.Reconstructed()) != 0 {
			t.Fatalf("frame %d: full-pel decoder drift", i)
		}
	}
}

func TestForceIFrameRestartsGoP(t *testing.T) {
	cfg := DefaultConfig(32, 32)
	cfg.GoPSize = 4
	enc, _ := NewEncoder(cfg)
	f := texturedFrame(32, 32, 12)
	var types []FrameType
	for i := 0; i < 6; i++ {
		opts := EncodeOptions{BaseQP: 24}
		if i == 2 {
			opts.ForceIFrame = true
		}
		ef, err := enc.Encode(f, opts)
		if err != nil {
			t.Fatal(err)
		}
		types = append(types, ef.Type)
	}
	// GoP counting is by frame index, so the forced I at 2 does not move
	// the scheduled I at 4.
	want := []FrameType{IFrame, PFrame, IFrame, PFrame, IFrame, PFrame}
	for i := range want {
		if types[i] != want[i] {
			t.Fatalf("types = %v, want %v", types, want)
		}
	}
}

func TestIFrameBudgetScale(t *testing.T) {
	src := texturedFrame(96, 96, 13)
	encode := func(scale float64) int {
		enc, _ := NewEncoder(DefaultConfig(96, 96))
		ef, err := enc.Encode(src, EncodeOptions{TargetBits: 20000, IFrameBudgetScale: scale})
		if err != nil {
			t.Fatal(err)
		}
		return ef.NumBits
	}
	plain := encode(0)
	scaled := encode(3)
	if plain > 20000 {
		t.Errorf("unscaled I-frame %d bits exceeds budget", plain)
	}
	if scaled > 60000 {
		t.Errorf("scaled I-frame %d bits exceeds 3x budget", scaled)
	}
	if scaled <= plain {
		t.Errorf("budget scale had no effect: %d vs %d", scaled, plain)
	}
}
