package codec

import (
	"bytes"
	"testing"

	"dive/internal/imgx"
)

// legacyEncode replicates the pre-split Encode: one monolithic
// encodePass(final=true) producing bits, reconstruction and state advance in
// a single phase. It is the oracle the two-phase path must match exactly.
func legacyEncode(t *testing.T, e *Encoder, frame *imgx.Plane, opts EncodeOptions) *EncodedFrame {
	t.Helper()
	ftype := PFrame
	if e.ref == nil || opts.ForceIFrame || (e.cfg.GoPSize <= 1) || (e.frameIdx%e.cfg.GoPSize == 0) {
		ftype = IFrame
	}
	var mf *MotionField
	if e.ref != nil {
		mf = e.AnalyzeMotion(frame)
	}
	baseQP := clampQP(opts.BaseQP)
	if ftype == IFrame && opts.IFrameBudgetScale > 1 && opts.TargetBits > 0 {
		opts.TargetBits = int(float64(opts.TargetBits) * opts.IFrameBudgetScale)
	}
	var dctCache interCache
	if ftype == PFrame {
		dctCache = e.buildInterDCTCache(frame, mf)
	}
	var result *passResult
	if opts.TargetBits > 0 {
		memo, _ := e.prefetchRCProbes(frame, ftype, mf, dctCache, opts.QPOffsets)
		lo, hi := 0, 51
		for lo < hi {
			mid := (lo + hi) / 2
			bits := memo[mid]
			if bits < 0 {
				bits = e.encodePass(frame, ftype, mf, dctCache, mid, opts.QPOffsets, false).bits
			}
			if bits <= opts.TargetBits {
				hi = mid
			} else {
				lo = mid + 1
			}
		}
		result = e.encodePass(frame, ftype, mf, dctCache, lo, opts.QPOffsets, true)
		baseQP = result.qp
	} else {
		result = e.encodePass(frame, ftype, mf, dctCache, baseQP, opts.QPOffsets, true)
	}
	e.ref = result.recon
	e.refQPs = result.qps
	e.analyzed, e.motion = nil, nil
	idx := e.frameIdx
	e.frameIdx++
	return &EncodedFrame{
		Type: ftype, Index: idx, BaseQP: baseQP,
		MBW: e.mbw, MBH: e.mbh,
		Motion: mf, QPs: result.qps,
		Data: result.data, NumBits: result.nbits,
	}
}

// scriptInputs returns the same varied frame/option sequence encodeScript
// uses (I, P, differential QP, rate control, forced I).
func scriptInputs(w, h int) []struct {
	frame *imgx.Plane
	opts  EncodeOptions
} {
	f0 := texturedFrame(w, h, 7)
	f1 := shiftFrame(f0, 3, 1)
	f2 := shiftFrame(f0, 5, 2)
	f3 := shiftFrame(f0, 8, 3)
	offsets := make([]int, (w/MBSize)*(h/MBSize))
	for i := range offsets {
		if i%3 == 0 {
			offsets[i] = 6
		}
	}
	return []struct {
		frame *imgx.Plane
		opts  EncodeOptions
	}{
		{f0, EncodeOptions{BaseQP: 22}},
		{f1, EncodeOptions{BaseQP: 22}},
		{f2, EncodeOptions{BaseQP: 26, QPOffsets: offsets}},
		{f3, EncodeOptions{TargetBits: 60_000}},
		{f1, EncodeOptions{TargetBits: 90_000, ForceIFrame: true, IFrameBudgetScale: 2}},
		{f2, EncodeOptions{TargetBits: 60_000, QPOffsets: offsets}},
	}
}

// TestTwoPhaseMatchesLegacyEncode pins the split's core contract: the
// quantize+emit composition produces byte-identical bitstreams, identical
// bit counts, QP maps and reconstructions to the monolithic final pass, for
// every ME method and sub-pel setting.
func TestTwoPhaseMatchesLegacyEncode(t *testing.T) {
	for _, m := range AllMEMethods() {
		for _, subpel := range []bool{false, true} {
			cfg := DefaultConfig(96, 80)
			cfg.Method = m
			cfg.SubPel = subpel
			legacy, err := NewEncoder(cfg)
			if err != nil {
				t.Fatal(err)
			}
			split, err := NewEncoder(cfg)
			if err != nil {
				t.Fatal(err)
			}
			for i, s := range scriptInputs(96, 80) {
				want := legacyEncode(t, legacy, s.frame, s.opts)
				got, err := split.Encode(s.frame, s.opts)
				if err != nil {
					t.Fatalf("method=%s subpel=%v frame %d: %v", m, subpel, i, err)
				}
				if !bytes.Equal(want.Data, got.Data) {
					t.Fatalf("method=%s subpel=%v frame %d: two-phase bitstream differs (%d vs %d bytes)",
						m, subpel, i, len(got.Data), len(want.Data))
				}
				if want.NumBits != got.NumBits || want.BaseQP != got.BaseQP || want.Type != got.Type {
					t.Fatalf("method=%s subpel=%v frame %d: metadata differs: bits %d/%d qp %d/%d type %v/%v",
						m, subpel, i, got.NumBits, want.NumBits, got.BaseQP, want.BaseQP, got.Type, want.Type)
				}
				for j := range want.QPs {
					if want.QPs[j] != got.QPs[j] {
						t.Fatalf("method=%s subpel=%v frame %d: QP map differs at MB %d", m, subpel, i, j)
					}
				}
				if !bytes.Equal(legacy.Reconstructed().Pix, split.Reconstructed().Pix) {
					t.Fatalf("method=%s subpel=%v frame %d: reconstructions diverge", m, subpel, i)
				}
			}
		}
	}
}

// TestDeferredEmitBitExact drives the two-phase API the way the frame
// pipeline does: up to depth frames are quantized ahead before their
// bitstreams are emitted. Because AnalyzeAndQuantize advances the encoder
// reference, deferring emission must not change a single byte relative to
// the immediate-emit serial path.
func TestDeferredEmitBitExact(t *testing.T) {
	for _, depth := range []int{2, 3} {
		cfg := DefaultConfig(96, 80)
		serial, err := NewEncoder(cfg)
		if err != nil {
			t.Fatal(err)
		}
		deferred, err := NewEncoder(cfg)
		if err != nil {
			t.Fatal(err)
		}
		inputs := scriptInputs(96, 80)
		var want [][]byte
		for i, s := range inputs {
			ef, err := serial.Encode(s.frame, s.opts)
			if err != nil {
				t.Fatalf("serial frame %d: %v", i, err)
			}
			want = append(want, ef.Data)
		}
		var pending []*FrameJob
		var got [][]byte
		emitOldest := func() {
			job := pending[0]
			pending = pending[1:]
			ef, err := deferred.EmitBitstream(job)
			if err != nil {
				t.Fatalf("depth %d: emit: %v", depth, err)
			}
			got = append(got, ef.Data)
		}
		for i, s := range inputs {
			job, err := deferred.AnalyzeAndQuantize(s.frame, s.opts)
			if err != nil {
				t.Fatalf("depth %d frame %d: %v", depth, i, err)
			}
			pending = append(pending, job)
			if len(pending) >= depth {
				emitOldest()
			}
		}
		for len(pending) > 0 {
			emitOldest()
		}
		for i := range want {
			if !bytes.Equal(want[i], got[i]) {
				t.Errorf("depth %d frame %d: deferred-emit bitstream differs (%d vs %d bytes)",
					depth, i, len(got[i]), len(want[i]))
			}
		}
	}
}

// TestEmitBitstreamMisuse covers the job lifecycle errors: double emit and
// emitting on a foreign encoder must fail rather than corrupt state.
func TestEmitBitstreamMisuse(t *testing.T) {
	cfg := DefaultConfig(64, 48)
	enc, err := NewEncoder(cfg)
	if err != nil {
		t.Fatal(err)
	}
	other, err := NewEncoder(cfg)
	if err != nil {
		t.Fatal(err)
	}
	job, err := enc.AnalyzeAndQuantize(texturedFrame(64, 48, 1), EncodeOptions{BaseQP: 24})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := other.EmitBitstream(job); err == nil {
		t.Error("emitting a job on a different encoder should fail")
	}
	if _, err := enc.EmitBitstream(job); err != nil {
		t.Fatalf("first emit: %v", err)
	}
	if _, err := enc.EmitBitstream(job); err == nil {
		t.Error("double emit should fail")
	}
}
