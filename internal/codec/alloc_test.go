package codec

import (
	"bytes"
	"testing"

	"dive/internal/imgx"
	"dive/internal/obs"
)

// Steady-state allocation contract. With ReuseFrames set, a serial encoder
// (Workers=1, telemetry off) must not allocate at all once its free lists
// are warm: recon planes, frame jobs, QP/mode/level scratch, trial scratch
// and BitWriter buffers all recycle. These tests pin that with
// testing.AllocsPerRun; the CI alloc gate (make bench-alloc) pins the
// -benchmem numbers of the matching benchmarks.

// allocStreamEncoder builds a pooled serial encoder plus a varied frame
// cycle (shifting texture, so P-frames carry real motion and residual) for
// steady-state loops. GoPSize 8 puts I-frames inside the measured window.
func allocStreamEncoder(t testing.TB, reuse bool) (*Encoder, []*imgx.Plane) {
	t.Helper()
	cfg := DefaultConfig(96, 80)
	cfg.Workers = 1
	cfg.GoPSize = 8
	cfg.ReuseFrames = reuse
	enc, err := NewEncoder(cfg)
	if err != nil {
		t.Fatal(err)
	}
	f0 := texturedFrame(96, 80, 11)
	frames := []*imgx.Plane{f0, shiftFrame(f0, 2, 1), shiftFrame(f0, 4, 2), shiftFrame(f0, 6, 2)}
	return enc, frames
}

func TestEncodeSteadyStateZeroAlloc(t *testing.T) {
	for _, tc := range []struct {
		name string
		opts EncodeOptions
	}{
		{"fixed-qp", EncodeOptions{BaseQP: 26}},
		{"differential-qp", EncodeOptions{BaseQP: 26, QPOffsets: makeOffsets(96, 80)}},
		{"rate-controlled", EncodeOptions{TargetBits: 40_000}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			enc, frames := allocStreamEncoder(t, true)
			idx := 0
			step := func() {
				f := frames[idx%len(frames)]
				idx++
				if _, err := enc.Encode(f, tc.opts); err != nil {
					t.Fatal(err)
				}
			}
			// Warm-up: fill the job/plane/trial free lists and grow the
			// BitWriter to its steady-state capacity (covers one full GoP,
			// so the I-frame trial recon is allocated here too).
			for i := 0; i < 16; i++ {
				step()
			}
			if allocs := testing.AllocsPerRun(32, step); allocs != 0 {
				t.Errorf("steady-state Encode: %.1f allocs/frame, want 0", allocs)
			}
		})
	}
}

// TestTwoPhaseSteadyStateZeroAlloc drives AnalyzeAndQuantize/EmitBitstream
// the way the frame pipeline does — emission deferred behind the analysis
// by `depth` frames — and requires zero steady-state allocations at every
// supported depth.
func TestTwoPhaseSteadyStateZeroAlloc(t *testing.T) {
	for _, depth := range []int{1, 2, 3} {
		enc, frames := allocStreamEncoder(t, true)
		ring := make([]*FrameJob, depth)
		idx, pending := 0, 0
		step := func() {
			// The oldest in-flight job sits depth frames back — the same
			// ring slot this frame's job will take over.
			if pending == depth {
				if _, err := enc.EmitBitstream(ring[idx%depth]); err != nil {
					t.Fatal(err)
				}
				pending--
			}
			f := frames[idx%len(frames)]
			job, err := enc.AnalyzeAndQuantize(f, EncodeOptions{TargetBits: 40_000})
			if err != nil {
				t.Fatal(err)
			}
			ring[idx%depth] = job
			idx++
			pending++
		}
		for i := 0; i < 16; i++ {
			step()
		}
		if allocs := testing.AllocsPerRun(32, step); allocs != 0 {
			t.Errorf("depth %d: steady-state two-phase: %.1f allocs/frame, want 0", depth, allocs)
		}
	}
}

// TestJournaledPathAllocBound documents the journaled exception: with a
// Recorder attached, rate control appends its bisection trace (consumed by
// value by the decision journal), so the steady state allocates a little —
// but the bound must stay small and flat.
func TestJournaledPathAllocBound(t *testing.T) {
	enc, frames := allocStreamEncoder(t, true)
	enc.cfg.Obs = obs.NewRecorder(64)
	idx := 0
	step := func() {
		f := frames[idx%len(frames)]
		idx++
		if _, err := enc.Encode(f, EncodeOptions{TargetBits: 40_000}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 16; i++ {
		step()
	}
	// The RC trace is a handful of appends (≤ 6 bisection probes); allow
	// headroom for the recorder's internal bookkeeping but catch any
	// per-MB-magnitude regression.
	if allocs := testing.AllocsPerRun(32, step); allocs > 10 {
		t.Errorf("journaled steady-state Encode: %.1f allocs/frame, want <= 10", allocs)
	}
}

func makeOffsets(w, h int) []int {
	offsets := make([]int, (w/MBSize)*(h/MBSize))
	for i := range offsets {
		if i%3 == 0 {
			offsets[i] = 6
		}
	}
	return offsets
}

// TestPooledBitExact pins the other half of the pooling contract: recycling
// may not change a single emitted byte. A pooled (ReuseFrames, deferred
// emit) encoder must match a fresh-buffer serial encoder across every ME
// method, pipeline depth 1–3 and the scripted option mix (I, P,
// differential QP, rate control, forced I).
func TestPooledBitExact(t *testing.T) {
	for _, m := range AllMEMethods() {
		for depth := 1; depth <= 3; depth++ {
			cfg := DefaultConfig(96, 80)
			cfg.Method = m
			fresh, err := NewEncoder(cfg)
			if err != nil {
				t.Fatal(err)
			}
			pcfg := cfg
			pcfg.ReuseFrames = true
			pooled, err := NewEncoder(pcfg)
			if err != nil {
				t.Fatal(err)
			}
			inputs := scriptInputs(96, 80)
			var want [][]byte
			var wantQPs [][]int
			for i, s := range inputs {
				ef, err := fresh.Encode(s.frame, s.opts)
				if err != nil {
					t.Fatalf("fresh frame %d: %v", i, err)
				}
				want = append(want, ef.Data)
				wantQPs = append(wantQPs, ef.QPs)
			}
			var pending []*FrameJob
			var got [][]byte
			var gotQPs [][]int
			emitOldest := func() {
				job := pending[0]
				pending = pending[1:]
				ef, err := pooled.EmitBitstream(job)
				if err != nil {
					t.Fatalf("method=%s depth=%d: emit: %v", m, depth, err)
				}
				// Pooled frames alias job storage: copy before the job
				// cycles back, exactly as a ReuseFrames caller must.
				got = append(got, append([]byte(nil), ef.Data...))
				gotQPs = append(gotQPs, append([]int(nil), ef.QPs...))
			}
			for i, s := range inputs {
				job, err := pooled.AnalyzeAndQuantize(s.frame, s.opts)
				if err != nil {
					t.Fatalf("method=%s depth=%d frame %d: %v", m, depth, i, err)
				}
				pending = append(pending, job)
				if len(pending) >= depth {
					emitOldest()
				}
			}
			for len(pending) > 0 {
				emitOldest()
			}
			for i := range want {
				if !bytes.Equal(want[i], got[i]) {
					t.Errorf("method=%s depth=%d frame %d: pooled bitstream differs (%d vs %d bytes)",
						m, depth, i, len(got[i]), len(want[i]))
				}
				for j := range wantQPs[i] {
					if wantQPs[i][j] != gotQPs[i][j] {
						t.Fatalf("method=%s depth=%d frame %d: QP map differs at MB %d", m, depth, i, j)
					}
				}
			}
			if !bytes.Equal(fresh.Reconstructed().Pix, pooled.Reconstructed().Pix) {
				t.Errorf("method=%s depth=%d: reconstructions diverge", m, depth)
			}
		}
	}
}

// TestReuseFramesAliasingContract documents what ReuseFrames trades away:
// the handed-out frame's Data is overwritten once the job cycles back. The
// decode of each frame (before the next encode) must still be valid.
func TestReuseFramesAliasingContract(t *testing.T) {
	enc, frames := allocStreamEncoder(t, true)
	dec, err := NewDecoder(enc.cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		ef, err := enc.Encode(frames[i%len(frames)], EncodeOptions{BaseQP: 26})
		if err != nil {
			t.Fatal(err)
		}
		// Consume immediately — the ReuseFrames contract.
		rec, err := dec.Decode(ef.Data)
		if err != nil {
			t.Fatalf("frame %d: decode of pooled Data failed: %v", i, err)
		}
		if !bytes.Equal(rec.Image.Pix, enc.Reconstructed().Pix) {
			t.Fatalf("frame %d: decoder disagrees with encoder reconstruction", i)
		}
	}
}
