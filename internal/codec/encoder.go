package codec

import (
	"fmt"

	"dive/internal/imgx"
	"dive/internal/obs"
	"dive/internal/parallel"
	"dive/internal/pool"
)

// FrameType distinguishes intra-coded from predicted frames.
type FrameType int

// Frame types.
const (
	IFrame FrameType = iota + 1
	PFrame
)

// String returns "I" or "P".
func (t FrameType) String() string {
	if t == IFrame {
		return "I"
	}
	return "P"
}

// MBMode is the coding mode of one macroblock.
type MBMode int

// Macroblock modes.
const (
	ModeSkip MBMode = iota + 1 // no residual; MV equals the predictor
	ModeInter
	ModeIntra
)

// Config configures an Encoder/Decoder pair.
type Config struct {
	Width, Height int      // frame size; must be multiples of 16
	GoPSize       int      // I-frame interval; <= 1 means every frame is I
	SearchRange   int      // motion search window radius in pixels
	Method        MEMethod // motion estimation strategy
	SkipThreshold int      // SAD at the predictor below which a MB is skipped
	// SubPel enables half-pixel motion vectors (bilinear interpolation),
	// matching the sub-pel precision of production encoders. Vectors are
	// then expressed in half-pel units throughout (MotionField.Scale 2).
	SubPel bool
	// Deblock enables the in-loop deblocking filter: block boundaries that
	// look like quantization artifacts are smoothed on the reconstruction
	// both encoder- and decoder-side, improving reference quality at high
	// QP exactly as H.264's loop filter does.
	Deblock bool
	// Obs receives per-stage encode telemetry (motion search, DCT,
	// entropy coding, rate-control trial counts). Nil disables
	// instrumentation; the Decoder ignores it.
	Obs *obs.Recorder
	// Workers bounds the encoder's intra-frame parallelism: wavefront
	// motion search, inter-DCT cache sharding and speculative rate-control
	// probes. 0 sizes to GOMAXPROCS, 1 forces the serial path. The output
	// bitstream is bit-exact identical for every value.
	Workers int
	// ReuseFrames recycles each frame's hand-out storage — the EncodedFrame
	// struct and its QPs and Data slices — through the encoder's job free
	// list instead of allocating fresh copies per frame. With it set the
	// steady-state encode loop allocates nothing, but a returned frame (and
	// its QPs/Data) is only valid until the job cycles back: callers must
	// finish with (or copy) a frame before the encoder has analyzed
	// jobFreeCap further frames — in practice, consume each frame before the
	// next pipeline batch. Off by default because callers that retain frames
	// across encodes (tests, offline collectors) would observe overwrites.
	// The emitted bits are byte-identical either way.
	ReuseFrames bool
	// RefTransform selects the float64 reference transform/quantize/intra
	// kernels (dct_ref.go) instead of the fixed-point production kernels,
	// reproducing the pre-fixed-point bitstreams exactly. Encoder and
	// decoder must agree on it. It exists for the transform-parity
	// experiment and the cross-check tests; production leaves it off.
	RefTransform bool
}

// DefaultConfig returns sensible defaults for a frame size.
func DefaultConfig(w, h int) Config {
	return Config{
		Width: w, Height: h,
		GoPSize:       48,
		SearchRange:   12,
		Method:        MEHex,
		SkipThreshold: 512, // 2 luma levels per pixel over a 16×16 MB
		SubPel:        true,
		Deblock:       true,
	}
}

// MotionField is the per-macroblock motion information the encoder computed
// for one frame — the "free" signal DiVE's analytics consume.
type MotionField struct {
	MBW, MBH int
	MVs      []MV
	Modes    []MBMode
	// SADs holds the matching cost of each chosen vector, a cheap
	// confidence signal (high SAD = unreliable vector).
	SADs []int
	// Scale is the sub-pel denominator: a vector of (x, y) represents a
	// displacement of (x/Scale, y/Scale) pixels. 1 for full-pel, 2 for
	// half-pel streams.
	Scale int
}

// At returns the MV of macroblock (bx, by).
func (f *MotionField) At(bx, by int) MV { return f.MVs[by*f.MBW+bx] }

// NonZeroRatio returns η, the fraction of macroblocks with a non-zero
// motion vector — the paper's ego-motion signal (Section III-B2).
func (f *MotionField) NonZeroRatio() float64 {
	if len(f.MVs) == 0 {
		return 0
	}
	n := 0
	for _, v := range f.MVs {
		if !v.IsZero() {
			n++
		}
	}
	return float64(n) / float64(len(f.MVs))
}

// EncodedFrame is one compressed frame plus the side information the
// analytics layer uses.
type EncodedFrame struct {
	Type   FrameType
	Index  int
	BaseQP int
	MBW    int
	MBH    int
	// Motion is the encoder's analysis for this frame (nil for the very
	// first frame). Its backing storage is recycled: the field stays valid
	// until the second following Encode/AnalyzeMotion call on the same
	// encoder; consumers that need it longer must copy it
	// (mvfield.FromMotion does).
	Motion  *MotionField
	QPs     []int // final per-MB QP
	Data    []byte
	NumBits int
	// RCTrials is the rate-control bisection path that chose BaseQP: every
	// probe the bisection consulted, in loop order, with its exact trial
	// bit count (speculative entries were served from the parallel
	// prefetcher's memo). Nil when rate control did not run or telemetry is
	// disabled (Config.Obs nil) — the decision journal is its consumer.
	RCTrials []obs.QPTrial
}

// Bytes returns the frame payload size in bytes.
func (ef *EncodedFrame) Bytes() int { return len(ef.Data) }

// EncodeOptions controls one frame's encode.
type EncodeOptions struct {
	// BaseQP is the frame QP when TargetBits is zero.
	BaseQP int
	// QPOffsets adds a per-macroblock offset (len MBW*MBH) to the base QP;
	// nil means a flat map. This is the differential-encoding hook: DiVE
	// sets 0 for foreground macroblocks and δ for background.
	QPOffsets []int
	// TargetBits, when positive, selects the lowest base QP whose output
	// fits within the budget (one-pass rate control via bisection; motion
	// estimation is reused across trials).
	TargetBits int
	// IFrameBudgetScale multiplies TargetBits when the frame is
	// intra-coded. Intra frames cost several times a P-frame at equal
	// quality; scaling their budget (and letting the transmit queue absorb
	// the burst) is how streaming rate controllers avoid periodic quality
	// collapses. Zero means 1.
	IFrameBudgetScale float64
	// ForceIFrame starts a new GoP at this frame.
	ForceIFrame bool
	// MinQP floors the frame QP: BaseQP is raised to it and rate control
	// never bisects below it. Degradation ladders raise this floor on a
	// failing link so the encoder cannot spend bits the uplink has already
	// shown it cannot carry. Zero (the default) imposes no floor.
	MinQP int
}

// Encoder compresses a sequence of frames.
type Encoder struct {
	cfg      Config
	mbw, mbh int
	pool     *parallel.Pool
	ref      *imgx.Plane // reconstructed previous frame
	// prevRef lags one frame behind ref before a retired reference plane is
	// released to recons, so Reconstructed() callers keep a stable plane
	// through the whole next analyze (see Reconstructed).
	prevRef *imgx.Plane
	// recons recycles reconstruction planes: each AnalyzeAndQuantize takes
	// one and retires one, so the steady state circulates three planes
	// (ref, prevRef, in-build) with no allocation.
	recons *pool.Planes
	// trials recycles rate-control trial scratch (countPass); sized to the
	// pool width because speculative probes run concurrently.
	trials *pool.Freelist[trialScratch]
	// refQPs is the per-MB QP the reference was coded with — an
	// encoder-owned copy (the authoritative array lives in the frame's job,
	// whose storage recycles on a pipeline goroutine; the copy keeps the
	// skip-threshold reads of the next analyze off that storage).
	refQPs   []int
	frameIdx int
	// analyzed/analyzedSeq identify the frame for which `motion` is valid:
	// pointer identity plus the plane's content generation counter, so a
	// caller that reuses one buffer across frames (and bumps it) never
	// reads a stale cached field.
	analyzed    *imgx.Plane
	analyzedSeq uint64
	motion      *MotionField
	// mfBuf rotates two MotionField buffers across analyses: the field
	// returned by one analysis stays intact through the whole next frame,
	// so EncodedFrame.Motion consumers that finish before then never see a
	// recycled buffer (see EncodedFrame.Motion).
	mfBuf  [2]*MotionField
	mfNext int
	// dctScratch is the recycled backing array of the per-frame inter-DCT
	// cache (QP-independent, rebuilt each P-frame, never escapes Encode):
	// fixed-point coefficients on the production path. refDctScratch is its
	// float64 twin, allocated lazily and only in RefTransform mode.
	dctScratch    [][blockSize * blockSize]int32
	refDctScratch [][blockSize * blockSize]float64
	// batches recycles the structure-of-arrays row-batch transform scratch;
	// sized to the pool width because buildInterDCTCache shards macroblock
	// rows across the pool.
	batches *pool.Freelist[dctBatch]
	// jobFree recycles FrameJob backing storage between EmitBitstream
	// (which may run on a pipeline goroutine) and the next
	// AnalyzeAndQuantize; the channel provides the happens-before edge.
	jobFree chan *FrameJob
	// searchFn/dctFn are the per-frame parallel-region bodies, built once at
	// construction over encoder fields (searchFrame/searchMF, dctFrame/
	// dctMF) instead of closing over loop-local values: a closure handed to
	// Pool.ForEach/Wavefront escapes (the pool may run it on spawned
	// goroutines), so a fresh closure per frame would be a steady-state heap
	// allocation. The fields are written only by the analyze goroutine
	// before the region runs and the region's completion is a barrier, so
	// reuse is race-free.
	searchFn    func(bx, by int)
	searchFrame *imgx.Plane
	searchMF    *MotionField
	dctFn       func(by int)
	dctFrame    *imgx.Plane
	dctMF       *MotionField
}

// NewEncoder validates cfg and creates an encoder.
func NewEncoder(cfg Config) (*Encoder, error) {
	if cfg.Width <= 0 || cfg.Height <= 0 || cfg.Width%MBSize != 0 || cfg.Height%MBSize != 0 {
		return nil, fmt.Errorf("codec: frame size %dx%d must be positive multiples of %d", cfg.Width, cfg.Height, MBSize)
	}
	if cfg.SearchRange <= 0 {
		return nil, fmt.Errorf("codec: search range must be positive")
	}
	if cfg.Method < MEDia || cfg.Method > MEEsa {
		return nil, fmt.Errorf("codec: unknown motion estimation method %d", cfg.Method)
	}
	p := parallel.New(cfg.Workers)
	e := &Encoder{
		cfg: cfg, mbw: cfg.Width / MBSize, mbh: cfg.Height / MBSize,
		pool:    p,
		recons:  pool.NewPlanes(cfg.Width, cfg.Height, 2),
		trials:  pool.NewFreelist[trialScratch](p.Workers()),
		batches: pool.NewFreelist[dctBatch](p.Workers()),
		jobFree: make(chan *FrameJob, jobFreeCap),
	}
	e.searchFn = func(bx, by int) { e.searchMB(e.searchFrame, e.searchMF, bx, by) }
	e.dctFn = func(by int) { e.dctRow(by) }
	return e, nil
}

// MBDims returns the macroblock grid size.
func (e *Encoder) MBDims() (int, int) { return e.mbw, e.mbh }

// Reconstructed returns the encoder's reconstruction of the last encoded
// frame — bit-exact with what the decoder produces. The plane's backing
// storage is recycled: it stays intact through the whole next
// AnalyzeAndQuantize/Encode but may be overwritten by the second one;
// consumers that need it longer must copy it.
func (e *Encoder) Reconstructed() *imgx.Plane { return e.ref }

// predictMV returns the median-of-neighbors MV predictor for macroblock
// (bx, by), identical in encoder and decoder.
func predictMV(mvs []MV, mbw, bx, by int) MV {
	var cands [3]MV
	n := 0
	if bx > 0 {
		cands[n] = mvs[by*mbw+bx-1]
		n++
	}
	if by > 0 {
		cands[n] = mvs[(by-1)*mbw+bx]
		n++
		if bx < mbw-1 {
			cands[n] = mvs[(by-1)*mbw+bx+1]
			n++
		}
	}
	switch n {
	case 0:
		return MV{}
	case 1:
		return cands[0]
	case 2:
		return MV{(cands[0].X + cands[1].X) / 2, (cands[0].Y + cands[1].Y) / 2}
	default:
		return MV{median3(cands[0].X, cands[1].X, cands[2].X), median3(cands[0].Y, cands[1].Y, cands[2].Y)}
	}
}

func median3(a, b, c int16) int16 {
	if a > b {
		a, b = b, a
	}
	if b > c {
		b = c
	}
	if a > b {
		b = a
	}
	return b
}

// neighborhoodMaxQP returns the maximum reference QP in the 3×3 macroblock
// neighborhood of (bx, by).
func (e *Encoder) neighborhoodMaxQP(bx, by int) int {
	maxQP := 0
	for dy := -1; dy <= 1; dy++ {
		for dx := -1; dx <= 1; dx++ {
			nx, ny := bx+dx, by+dy
			if nx < 0 || ny < 0 || nx >= e.mbw || ny >= e.mbh {
				continue
			}
			if qp := e.refQPs[ny*e.mbw+nx]; qp > maxQP {
				maxQP = qp
			}
		}
	}
	return maxQP
}

// AnalyzeMotion runs motion estimation of frame against the current
// reference and returns the motion field without encoding anything. The
// result is cached: a subsequent Encode of the same frame reuses it. The
// cache key is the plane pointer plus its content generation counter
// (imgx.Plane.Seq), so reusing one buffer for successive frames is safe as
// long as writers bump the counter (Set/Fill do; direct Pix writers call
// Bump). It returns nil when no reference exists yet (the very first frame).
//
// With a multi-worker pool the macroblock grid runs as a wavefront over
// anti-diagonals d = bx + 2·by: each MB's predictor reads its left, top and
// top-right neighbors, which all lie on earlier diagonals, so every MB sees
// exactly the predictors the serial raster scan would have produced and the
// resulting field is bit-identical at any worker count.
func (e *Encoder) AnalyzeMotion(frame *imgx.Plane) *MotionField {
	if e.ref == nil {
		return nil
	}
	if e.analyzed == frame && e.analyzedSeq == frame.Seq() && e.motion != nil {
		return e.motion
	}
	searchTimer := e.cfg.Obs.StartStage(obs.StageCodecMotion)
	scale := 1
	if e.cfg.SubPel {
		scale = 2
	}
	mf := e.nextMotionField(scale)
	e.searchFrame, e.searchMF = frame, mf
	e.pool.Wavefront(e.mbw, e.mbh, e.searchFn)
	e.searchFrame, e.searchMF = nil, nil
	e.analyzed = frame
	e.analyzedSeq = frame.Seq()
	e.motion = mf
	searchTimer.Stop()
	return mf
}

// nextMotionField returns the next recycled MotionField buffer. Rotating two
// buffers keeps the previously returned field intact through the whole next
// analysis (see EncodedFrame.Motion). No zeroing is needed: searchMB writes
// every cell, and predictors only read cells already finalized this frame.
func (e *Encoder) nextMotionField(scale int) *MotionField {
	n := e.mbw * e.mbh
	slot := e.mfNext
	e.mfNext = 1 - e.mfNext
	mf := e.mfBuf[slot]
	if mf == nil {
		mf = &MotionField{
			MBW: e.mbw, MBH: e.mbh,
			MVs:   make([]MV, n),
			Modes: make([]MBMode, n),
			SADs:  make([]int, n),
		}
		e.mfBuf[slot] = mf
	}
	mf.Scale = scale
	return mf
}

// searchMB runs the skip test and motion search for macroblock (bx, by) and
// writes its vector, mode and SAD into mf. Predictors are read from mf.MVs,
// so the caller must guarantee the left, top and top-right entries are final
// before this cell runs — raster order and the d = bx+2·by wavefront both do.
func (e *Encoder) searchMB(frame *imgx.Plane, mf *MotionField, bx, by int) {
	i := by*e.mbw + bx
	pred := predictMV(mf.MVs, e.mbw, bx, by)
	px, py := bx*MBSize, by*MBSize
	// Skip test at the predictor. The threshold is QP-aware: a
	// heavily quantized reference block carries reconstruction
	// noise on the order of 64–77·Qstep of SAD even when the
	// content is static, and searching through that noise would
	// emit jitter vectors. The neighborhood maximum matters
	// because deblocking smears a crushed neighbor's noise across
	// the shared boundary.
	skipThresh := e.cfg.SkipThreshold
	if e.refQPs != nil {
		if qpAware := int(96 * QStep(e.neighborhoodMaxQP(bx, by))); qpAware > skipThresh {
			skipThresh = qpAware
		}
	}
	var sadPred int
	if e.cfg.SubPel {
		sadPred = sadHalf(frame, px, py, e.ref, px*2+int(pred.X), py*2+int(pred.Y), MBSize, MBSize, skipThresh)
	} else {
		sadPred = imgx.SAD(frame, px, py, e.ref, px+int(pred.X), py+int(pred.Y), MBSize, MBSize, skipThresh)
	}
	if sadPred < skipThresh {
		mf.MVs[i] = pred
		mf.Modes[i] = ModeSkip
		mf.SADs[i] = sadPred
		return
	}
	fullPred := pred
	if e.cfg.SubPel {
		fullPred = MV{pred.X / 2, pred.Y / 2}
	}
	mv, cost := SearchMB(frame, e.ref, px, py, fullPred, e.cfg.Method, e.cfg.SearchRange)
	if e.cfg.SubPel {
		hmv := MV{mv.X * 2, mv.Y * 2}
		sad := sadHalf(frame, px, py, e.ref, px*2+int(hmv.X), py*2+int(hmv.Y), MBSize, MBSize, 1<<30)
		hmv, sad = refineHalf(frame, e.ref, px, py, hmv, sad)
		mv, cost = hmv, sad
	}
	mf.MVs[i] = mv
	mf.Modes[i] = ModeInter
	mf.SADs[i] = cost
}

// Encode compresses one frame and advances the encoder state. It is the
// serial composition of the two-phase API (see twophase.go): quantize, then
// emit immediately.
func (e *Encoder) Encode(frame *imgx.Plane, opts EncodeOptions) (*EncodedFrame, error) {
	job, err := e.AnalyzeAndQuantize(frame, opts)
	if err != nil {
		return nil, err
	}
	return e.EmitBitstream(job)
}

// prefetchRCProbes speculatively executes rate-control trial passes for the
// top levels of the bisection tree over [0, 51], as many levels as fit the
// pool width (1 + 2 + 4 + ... probes). It returns per-QP bit counts (-1 for
// QPs not probed) and the number of passes executed. A serial pool probes
// nothing — the bisection loop then runs exactly the pre-existing serial
// sequence of passes.
func (e *Encoder) prefetchRCProbes(frame *imgx.Plane, ftype FrameType, mf *MotionField, dctCache interCache, offsets []int) (memo [52]int, probes int) {
	for i := range memo {
		memo[i] = -1
	}
	nw := e.pool.Workers()
	if nw <= 1 {
		return memo, 0
	}
	// Enumerate the QPs the bisection may probe, level by level: interval
	// (lo, hi) probes mid and continues with (lo, mid) or (mid+1, hi).
	// Intervals on one level are disjoint, so the midpoints are distinct.
	type iv struct{ lo, hi int }
	level := []iv{{0, 51}}
	var qps []int
	for len(level) > 0 && len(qps)+len(level) <= nw {
		var next []iv
		for _, v := range level {
			mid := (v.lo + v.hi) / 2
			qps = append(qps, mid)
			if v.lo < mid {
				next = append(next, iv{v.lo, mid})
			}
			if mid+1 < v.hi {
				next = append(next, iv{mid + 1, v.hi})
			}
		}
		level = next
	}
	// The region body writes a separate results slice, never memo: a
	// closure capturing memo would force it onto the heap at every call,
	// including the serial early-return above that probes nothing.
	results := make([]int, len(qps))
	e.pool.ForEach(len(qps), func(k int) {
		results[k] = e.countPass(frame, ftype, mf, dctCache, qps[k], offsets)
	})
	for k, qp := range qps {
		memo[qp] = results[k]
	}
	return memo, len(qps)
}

// passResult is the outcome of one trial encode at a fixed base QP.
type passResult struct {
	qp    int
	data  []byte
	nbits int
	bits  int
	recon *imgx.Plane
	qps   []int
}

// encodePass transforms, quantizes and entropy-codes the frame at the given
// base QP. Motion estimation results are shared across passes. When final
// is false the pass is a rate-control trial: it produces exact bit counts
// but skips inter-macroblock reconstruction and loop filtering (intra
// macroblocks still reconstruct, because intra prediction is causal in the
// reconstruction).
//
// Production no longer calls this: phase one quantizes via quantizePass and
// rate-control trials count bits via countPass. It survives as the
// single-pass reference implementation the equivalence tests compare
// against (legacyEncode), so the pooled paths stay pinned to it.
func (e *Encoder) encodePass(frame *imgx.Plane, ftype FrameType, mf *MotionField, dctCache interCache, baseQP int, offsets []int, final bool) *passResult {
	w := &BitWriter{}
	// A P-frame trial pass never reconstructs (skip MBs compensate only
	// when final, inter MBs only quantize and count bits), so it needs no
	// reconstruction plane at all. Intra trial passes still do: intra
	// prediction reads reconstructed causal neighbors.
	var recon *imgx.Plane
	if final || ftype == IFrame {
		recon = imgx.NewPlane(e.cfg.Width, e.cfg.Height)
	}
	qps := make([]int, e.mbw*e.mbh)

	// Header.
	w.WriteUE(uint32(ftype))
	w.WriteUE(uint32(baseQP))
	w.WriteUE(uint32(e.mbw))
	w.WriteUE(uint32(e.mbh))
	if e.cfg.SubPel {
		w.WriteBit(1)
	} else {
		w.WriteBit(0)
	}
	if e.cfg.Deblock {
		w.WriteBit(1)
	} else {
		w.WriteBit(0)
	}

	codedMVs := make([]MV, e.mbw*e.mbh)
	for by := 0; by < e.mbh; by++ {
		for bx := 0; bx < e.mbw; bx++ {
			i := by*e.mbw + bx
			qp := baseQP
			if offsets != nil {
				qp = clampQP(baseQP + offsets[i])
			}
			qps[i] = qp
			px, py := bx*MBSize, by*MBSize

			if ftype == IFrame {
				w.WriteUE(uint32(ModeIntra))
				w.WriteSE(int32(qp - baseQP))
				if e.cfg.RefTransform {
					refEncodeIntraMB(w, frame, recon, px, py, qp)
				} else {
					encodeIntraMB(w, frame, recon, px, py, qp)
				}
				continue
			}

			mode := mf.Modes[i]
			mv := mf.MVs[i]
			pred := predictMV(codedMVs, e.mbw, bx, by)
			if mode == ModeSkip && mv == pred {
				w.WriteUE(uint32(ModeSkip))
				codedMVs[i] = pred
				if final {
					motionCompensate(recon, e.ref, px, py, pred, e.cfg.SubPel)
				}
				continue
			}
			w.WriteUE(uint32(ModeInter))
			w.WriteSE(int32(mv.X) - int32(pred.X))
			w.WriteSE(int32(mv.Y) - int32(pred.Y))
			w.WriteSE(int32(qp - baseQP))
			codedMVs[i] = mv
			if e.cfg.RefTransform {
				refEncodeInterMB(w, dctCache.refMB(i), e.ref, recon, px, py, mv, qp, e.cfg.SubPel, final)
			} else {
				encodeInterMB(w, dctCache.fixMB(i), e.ref, recon, px, py, mv, qp, e.cfg.SubPel, final)
			}
		}
	}
	if final && e.cfg.Deblock {
		deblockFrame(recon, qps, e.mbw)
	}
	nbits := w.Len()
	data := w.Bytes()
	return &passResult{qp: baseQP, data: data, nbits: nbits, bits: nbits, recon: recon, qps: qps}
}

// motionCompensate copies the reference block displaced by mv into recon.
func motionCompensate(recon, ref *imgx.Plane, px, py int, mv MV, subpel bool) {
	if subpel {
		compensateHalf(recon, ref, px, py, mv)
		return
	}
	imgx.CopyBlock(recon, px, py, ref, px+int(mv.X), py+int(mv.Y), MBSize, MBSize)
}

// refSampleI reads the reference pixel at (cx, cy) displaced by mv, which
// is in half-pel units when subpel is set. Integer throughout: sampleHalf
// rounds its bilinear taps internally.
func refSampleI(ref *imgx.Plane, cx, cy int, mv MV, subpel bool) int32 {
	if subpel {
		return int32(sampleHalf(ref, cx*2+int(mv.X), cy*2+int(mv.Y)))
	}
	return int32(ref.At(cx+int(mv.X), cy+int(mv.Y)))
}

// interCache is the per-frame inter-residual transform cache built by
// buildInterDCTCache: fixed-point coefficients on the production path,
// float64 coefficients in RefTransform mode. Exactly one slice is non-nil.
type interCache struct {
	fix [][blockSize * blockSize]int32
	ref [][blockSize * blockSize]float64
}

// fixMB returns macroblock i's 4 fixed-point coefficient blocks.
func (c interCache) fixMB(i int) [][blockSize * blockSize]int32 { return c.fix[i*4 : i*4+4] }

// refMB returns macroblock i's 4 float coefficient blocks.
func (c interCache) refMB(i int) [][blockSize * blockSize]float64 { return c.ref[i*4 : i*4+4] }

// buildInterDCTCache computes the forward DCT of every inter macroblock's
// motion-compensated residual (4 blocks per MB, in raster order). The cache
// is QP-independent and shared by all passes. Macroblock rows are
// independent, so they are sharded across the pool; within a row the
// transform runs as one structure-of-arrays batch (dctRow). The backing
// array is recycled across frames without zeroing: non-inter slots are
// never read (only ModeInter macroblocks index into the cache).
func (e *Encoder) buildInterDCTCache(frame *imgx.Plane, mf *MotionField) interCache {
	n := e.mbw * e.mbh * 4
	var cache interCache
	if e.cfg.RefTransform {
		if cap(e.refDctScratch) < n {
			e.refDctScratch = make([][blockSize * blockSize]float64, n)
		}
		cache.ref = e.refDctScratch[:n]
	} else {
		if cap(e.dctScratch) < n {
			e.dctScratch = make([][blockSize * blockSize]int32, n)
		}
		cache.fix = e.dctScratch[:n]
	}
	e.dctFrame, e.dctMF = frame, mf
	e.pool.ForEach(e.mbh, e.dctFn)
	e.dctFrame, e.dctMF = nil, nil
	return cache
}

// dctRow is the buildInterDCTCache region body for macroblock row by,
// reading its inputs from the encoder's dctFrame/dctMF fields (see
// searchFn). It gathers every inter MB's motion-compensated residual into
// the row batch's structure-of-arrays lanes, transforms all lanes at once
// and scatters the coefficients into the cache. Each block's result is a
// pure function of its own residual, so the batched output is bit-identical
// to per-block transforms at any worker count or row composition.
func (e *Encoder) dctRow(by int) {
	frame, mf := e.dctFrame, e.dctMF
	if e.cfg.RefTransform {
		e.refDctRow(frame, mf, by)
		return
	}
	b := e.getBatch()
	n := b.lanes
	subpel := e.cfg.SubPel
	nb := 0
	for bx := 0; bx < e.mbw; bx++ {
		i := by*e.mbw + bx
		if mf.Modes[i] != ModeInter {
			continue
		}
		px, py := bx*MBSize, by*MBSize
		mv := mf.MVs[i]
		blk := 0
		for oy := 0; oy < MBSize; oy += blockSize {
			for ox := 0; ox < MBSize; ox += blockSize {
				lane := nb + blk
				b.slot[lane] = i*4 + blk
				for y := 0; y < blockSize; y++ {
					row := b.soa[y*blockSize*n:]
					for x := 0; x < blockSize; x++ {
						cx, cy := px+ox+x, py+oy+y
						row[x*n+lane] = int32(frame.At(cx, cy)) - refSampleI(e.ref, cx, cy, mv, subpel)
					}
				}
				blk++
			}
		}
		nb += 4
	}
	if nb > 0 {
		b.forward(nb)
		for c := 0; c < blockSize*blockSize; c++ {
			row := b.soa[c*n:]
			for lane := 0; lane < nb; lane++ {
				e.dctScratch[b.slot[lane]][c] = row[lane]
			}
		}
	}
	e.batches.Put(b)
}

// refDctRow is dctRow's RefTransform twin: per-block float DCT into the
// float cache, exactly the pre-fixed-point arithmetic.
func (e *Encoder) refDctRow(frame *imgx.Plane, mf *MotionField, by int) {
	var res [blockSize * blockSize]float64
	for bx := 0; bx < e.mbw; bx++ {
		i := by*e.mbw + bx
		if mf.Modes[i] != ModeInter {
			continue
		}
		px, py := bx*MBSize, by*MBSize
		mv := mf.MVs[i]
		blk := 0
		for oy := 0; oy < MBSize; oy += blockSize {
			for ox := 0; ox < MBSize; ox += blockSize {
				for y := 0; y < blockSize; y++ {
					for x := 0; x < blockSize; x++ {
						cx, cy := px+ox+x, py+oy+y
						res[y*blockSize+x] = float64(frame.At(cx, cy)) - refSample(e.ref, cx, cy, mv, e.cfg.SubPel)
					}
				}
				refFdct8(&res, &e.refDctScratch[i*4+blk])
				blk++
			}
		}
	}
}

// encodeInterMB quantizes and entropy-codes one inter macroblock from its
// cached fixed-point DCT blocks and, on the final pass, reconstructs it.
func encodeInterMB(w *BitWriter, dctBlocks [][blockSize * blockSize]int32, ref, recon *imgx.Plane, px, py int, mv MV, qp int, subpel, final bool) {
	var dct, res [blockSize * blockSize]int32
	var levels [blockSize * blockSize]int32
	blk := 0
	for by := 0; by < MBSize; by += blockSize {
		for bx := 0; bx < MBSize; bx += blockSize {
			nz := quantizeBlockFixed(&dctBlocks[blk], qp, &levels)
			blk++
			writeCoeffs(w, &levels, nz)
			if !final {
				continue
			}
			dequantizeBlockFixed(&levels, qp, &dct)
			idct8Fixed(&dct, &res)
			for y := 0; y < blockSize; y++ {
				for x := 0; x < blockSize; x++ {
					cx, cy := px+bx+x, py+by+y
					v := refSampleI(ref, cx, cy, mv, subpel) + res[y*blockSize+x]
					recon.Set(cx, cy, clampPixI(v))
				}
			}
		}
	}
}

// Intra prediction modes, a simplified version of H.264's directional
// prediction: DC (neighbor mean), vertical (columns continue the row
// above), horizontal (rows continue the column to the left). The encoder
// picks the mode with the smallest prediction residual per 8×8 block and
// signals it in the bitstream.
const (
	intraModeDC = iota
	intraModeVertical
	intraModeHorizontal
	numIntraModes
)

// intraPredict fills pred with the prediction for the 8×8 block at
// (px, py) under the given mode, reading reconstructed causal neighbors.
// Modes that lack their neighbor degrade to DC. Integer throughout — the DC
// mean rounds to nearest (the float reference kept the fraction; one of the
// documented output changes of the fixed-point switch).
func intraPredict(recon *imgx.Plane, px, py, mode int, pred *[blockSize * blockSize]int32) {
	switch {
	case mode == intraModeVertical && py > 0:
		for x := 0; x < blockSize; x++ {
			v := int32(recon.At(px+x, py-1))
			for y := 0; y < blockSize; y++ {
				pred[y*blockSize+x] = v
			}
		}
	case mode == intraModeHorizontal && px > 0:
		for y := 0; y < blockSize; y++ {
			v := int32(recon.At(px-1, py+y))
			for x := 0; x < blockSize; x++ {
				pred[y*blockSize+x] = v
			}
		}
	default:
		dc := intraDC(recon, px, py)
		for i := range pred {
			pred[i] = dc
		}
	}
}

// chooseIntraMode returns the mode with the smallest absolute prediction
// residual for the block at (px, py).
func chooseIntraMode(cur, recon *imgx.Plane, px, py int) int {
	bestMode, bestSAD := intraModeDC, 1<<30
	var pred [blockSize * blockSize]int32
	for mode := 0; mode < numIntraModes; mode++ {
		intraPredict(recon, px, py, mode, &pred)
		sad := 0
		for y := 0; y < blockSize && sad < bestSAD; y++ {
			for x := 0; x < blockSize; x++ {
				d := int(int32(cur.At(px+x, py+y)) - pred[y*blockSize+x])
				if d < 0 {
					d = -d
				}
				sad += d
			}
		}
		if sad < bestSAD {
			bestSAD = sad
			bestMode = mode
		}
	}
	return bestMode
}

// encodeIntraMB codes one macroblock with per-block directional prediction
// from reconstructed neighbors. Intra blocks transform one at a time (never
// batched): prediction is causal in the reconstruction, so block k+1's
// input depends on block k's output.
func encodeIntraMB(w *BitWriter, cur, recon *imgx.Plane, px, py int, qp int) {
	var pred, res, dct [blockSize * blockSize]int32
	var levels [blockSize * blockSize]int32
	for by := 0; by < MBSize; by += blockSize {
		for bx := 0; bx < MBSize; bx += blockSize {
			mode := chooseIntraMode(cur, recon, px+bx, py+by)
			w.WriteUE(uint32(mode))
			intraPredict(recon, px+bx, py+by, mode, &pred)
			for y := 0; y < blockSize; y++ {
				for x := 0; x < blockSize; x++ {
					res[y*blockSize+x] = int32(cur.At(px+bx+x, py+by+y)) - pred[y*blockSize+x]
				}
			}
			fdct8Fixed(&res, &dct)
			nz := quantizeBlockFixed(&dct, qp, &levels)
			writeCoeffs(w, &levels, nz)
			dequantizeBlockFixed(&levels, qp, &dct)
			idct8Fixed(&dct, &res)
			for y := 0; y < blockSize; y++ {
				for x := 0; x < blockSize; x++ {
					recon.Set(px+bx+x, py+by+y, clampPixI(pred[y*blockSize+x]+res[y*blockSize+x]))
				}
			}
		}
	}
}

// intraDC predicts a block's DC from the reconstructed pixels directly above
// and to the left, falling back to mid-gray at frame borders. Both encoder
// and decoder reconstruct in raster order, so the prediction is causal. The
// mean rounds to the nearest integer.
func intraDC(recon *imgx.Plane, px, py int) int32 {
	sum, n := 0, 0
	if py > 0 {
		for x := 0; x < blockSize; x++ {
			sum += int(recon.At(px+x, py-1))
			n++
		}
	}
	if px > 0 {
		for y := 0; y < blockSize; y++ {
			sum += int(recon.At(px-1, py+y))
			n++
		}
	}
	if n == 0 {
		return 128
	}
	return int32((sum + n/2) / n)
}

func clampPixI(v int32) uint8 {
	if v < 0 {
		return 0
	}
	if v > 255 {
		return 255
	}
	return uint8(v)
}

func clampQP(qp int) int {
	if qp < 0 {
		return 0
	}
	if qp > 51 {
		return 51
	}
	return qp
}
