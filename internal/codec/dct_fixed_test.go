package codec

import (
	"math"
	"math/rand"
	"testing"
)

// randResidualBlock fills a block with worst-case-range inter residuals
// (difference of two uint8 planes: ±255).
func randResidualBlock(rng *rand.Rand, blk *[blockSize * blockSize]int32) {
	for i := range blk {
		blk[i] = int32(rng.Intn(511) - 255)
	}
}

// TestFixedDCTMatchesReference bounds the divergence between the fixed-point
// factorized forward transform and the float64 matrix reference over
// randomized full-range residual blocks. The factorization is algebraically
// exact, so the only differences are constant quantization (2^-13 relative)
// and the two rounding shifts; the bound below is the documented worst case
// from the DESIGN.md §12 error budget.
func TestFixedDCTMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	maxDiff := 0.0
	for trial := 0; trial < 500; trial++ {
		var src [blockSize * blockSize]int32
		var dst [blockSize * blockSize]int32
		var fsrc, fdst [blockSize * blockSize]float64
		randResidualBlock(rng, &src)
		for i, v := range src {
			fsrc[i] = float64(v)
		}
		fdct8Fixed(&src, &dst)
		refFdct8(&fsrc, &fdst)
		for i := range dst {
			d := math.Abs(float64(dst[i])/(1<<coefBits) - fdst[i])
			if d > maxDiff {
				maxDiff = d
			}
		}
	}
	if maxDiff > 1.5 {
		t.Fatalf("max coefficient divergence %.3f exceeds error budget 1.5", maxDiff)
	}
	t.Logf("max coefficient divergence fixed vs float: %.4f", maxDiff)
}

// TestFixedDCTRoundTrip pins the unquantized transform round trip: forward
// then inverse must recover full-range residuals within ±1 (the fixed-point
// rounding budget; the float reference has the same property).
func TestFixedDCTRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 500; trial++ {
		var src, coef, back [blockSize * blockSize]int32
		randResidualBlock(rng, &src)
		fdct8Fixed(&src, &coef)
		idct8Fixed(&coef, &back)
		for i := range src {
			if d := src[i] - back[i]; d < -1 || d > 1 {
				t.Fatalf("trial %d: round trip off by %d at %d (src %d, back %d)",
					trial, d, i, src[i], back[i])
			}
		}
	}
}

// shadowFdct8 mirrors fdct8Fixed's arithmetic exactly, but accumulates in
// int64 so it cannot overflow. If the int32 path ever wrapped, its output
// would differ from the shadow.
func shadowFdct8(src *[blockSize * blockSize]int32, dst *[blockSize * blockSize]int32) {
	pass := func(in, out []int64, base, step int, rnd int64, shift uint) {
		var v [8]int64
		for j := 0; j < 8; j++ {
			v[j] = in[base+j*step]
		}
		s0, s1, s2, s3 := v[0]+v[7], v[1]+v[6], v[2]+v[5], v[3]+v[4]
		d0, d1, d2, d3 := v[0]-v[7], v[1]-v[6], v[2]-v[5], v[3]-v[4]
		e0, e1 := s0+s3, s1+s2
		e2, e3 := s0-s3, s1-s2
		c1, c2, c3, c4 := int64(fixC1), int64(fixC2), int64(fixC3), int64(fixC4)
		c5, c6, c7 := int64(fixC5), int64(fixC6), int64(fixC7)
		out[base+0*step] = (c4*(e0+e1) + rnd) >> shift
		out[base+4*step] = (c4*(e0-e1) + rnd) >> shift
		out[base+2*step] = (c2*e2 + c6*e3 + rnd) >> shift
		out[base+6*step] = (c6*e2 - c2*e3 + rnd) >> shift
		out[base+1*step] = (c1*d0 + c3*d1 + c5*d2 + c7*d3 + rnd) >> shift
		out[base+3*step] = (c3*d0 - c7*d1 - c1*d2 - c5*d3 + rnd) >> shift
		out[base+5*step] = (c5*d0 - c1*d1 + c7*d2 + c3*d3 + rnd) >> shift
		out[base+7*step] = (c7*d0 - c5*d1 + c3*d2 - c1*d3 + rnd) >> shift
	}
	var a, tmp, b [blockSize * blockSize]int64
	for i, v := range src {
		a[i] = int64(v)
	}
	for y := 0; y < blockSize; y++ {
		pass(a[:], tmp[:], y*blockSize, 1, fdctRnd1, fdctShift1)
	}
	for x := 0; x < blockSize; x++ {
		pass(tmp[:], b[:], x, blockSize, fdctRnd2, fdctShift2)
	}
	for i, v := range b {
		dst[i] = int32(v)
	}
}

// TestFixedDCTDynamicRange is the satellite overflow property test: for
// worst-case ±255 residual patterns the int32 forward transform must agree
// with an int64 shadow of the identical arithmetic — any int32 wrap would
// show up as a mismatch. The transform is separable, so the per-coefficient
// worst cases are rank-1 sign patterns: all 256×256 (row mask × column mask)
// ±255 blocks are swept exhaustively, plus randomized full-range blocks, and
// the resulting coefficients are quantized at every QP 0–51 to cover the
// reciprocal quantizer's range too.
func TestFixedDCTDynamicRange(t *testing.T) {
	check := func(src *[blockSize * blockSize]int32) (maxCoef int32) {
		var got, want [blockSize * blockSize]int32
		fdct8Fixed(src, &got)
		shadowFdct8(src, &want)
		if got != want {
			t.Fatalf("int32 transform diverged from int64 shadow: overflow")
		}
		for _, c := range got {
			if c < 0 {
				c = -c
			}
			if c > maxCoef {
				maxCoef = c
			}
		}
		return maxCoef
	}
	var peak int32
	var src [blockSize * blockSize]int32
	for rowMask := 0; rowMask < 256; rowMask++ {
		for colMask := 0; colMask < 256; colMask++ {
			for y := 0; y < blockSize; y++ {
				rs := int32(1 - 2*(rowMask>>y&1))
				for x := 0; x < blockSize; x++ {
					cs := int32(1 - 2*(colMask>>x&1))
					src[y*blockSize+x] = 255 * rs * cs
				}
			}
			if m := check(&src); m > peak {
				peak = m
			}
		}
	}
	rng := rand.New(rand.NewSource(14))
	for trial := 0; trial < 200; trial++ {
		randResidualBlock(rng, &src)
		check(&src)
	}
	// The scaling-chain analysis bounds |fixed coef| by 2040·(1<<coefBits)
	// plus rounding; peak observed must respect it.
	limit := int32(2041 * (1 << coefBits))
	if peak > limit {
		t.Fatalf("peak |coef| %d exceeds documented bound %d", peak, limit)
	}
	t.Logf("peak |coef| over worst-case sweep: %d (bound %d)", peak, limit)

	// Quantize the absolute worst coefficient at every QP: the int64
	// product |coef|·recip must round-trip through the branchless path
	// without surprises (compare against direct big-arithmetic rounding).
	for qp := 0; qp <= 51; qp++ {
		var coef, levels [blockSize * blockSize]int32
		coef[0], coef[1] = peak, -peak
		nz := quantizeBlockFixed(&coef, qp, &levels)
		wantL := int32((int64(peak)*quantRecip[qp] + 1<<(quantShift-1)) >> quantShift)
		if levels[0] != wantL || levels[1] != -wantL {
			t.Fatalf("qp %d: levels (%d,%d), want ±%d", qp, levels[0], levels[1], wantL)
		}
		wantNZ := 0
		for _, l := range levels {
			if l != 0 {
				wantNZ++
			}
		}
		if nz != wantNZ {
			t.Fatalf("qp %d: nz = %d, want %d", qp, nz, wantNZ)
		}
	}
}

// TestFixedQuantizerMatchesReference bounds the level divergence between the
// reciprocal-multiply quantizer and the float-division reference across all
// QPs: levels may differ by at most 1, and only at ties within the
// reciprocal's 2^-20 relative error.
func TestFixedQuantizerMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	for qp := 0; qp <= 51; qp++ {
		var src, coef, levels [blockSize * blockSize]int32
		var fdct [blockSize * blockSize]float64
		var flevels [blockSize * blockSize]int32
		for trial := 0; trial < 20; trial++ {
			randResidualBlock(rng, &src)
			fdct8Fixed(&src, &coef)
			for i, c := range coef {
				fdct[i] = float64(c) / (1 << coefBits)
			}
			// Quantize the identical coefficients: fixed path against the
			// reference divide, using the fixed-point step the reciprocal
			// approximates so only the rounding strategy differs.
			qstep := float64(qstepFix[qp]) / (1 << coefBits)
			nz := quantizeBlockFixed(&coef, qp, &levels)
			refQuantizeBlock(&fdct, qstep, &flevels)
			gotNZ := 0
			for i := range levels {
				if d := levels[i] - flevels[i]; d < -1 || d > 1 {
					t.Fatalf("qp %d: level[%d] = %d, reference %d", qp, i, levels[i], flevels[i])
				}
				if levels[i] != 0 {
					gotNZ++
				}
			}
			if nz != gotNZ {
				t.Fatalf("qp %d: quantizeBlockFixed nz = %d, counted %d", qp, nz, gotNZ)
			}
		}
	}
}

// TestBatchForwardMatchesScalar pins the SoA gather/scatter indexing: a
// batched forward over random lanes must be bit-identical to per-block
// scalar transforms of the same data (they share fdctPass, so this is a
// layout test, not an arithmetic one).
func TestBatchForwardMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	const lanes = 20
	b := &dctBatch{
		lanes: lanes,
		soa:   make([]int32, blockSize*blockSize*lanes),
		tmp:   make([]int32, blockSize*blockSize*lanes),
		slot:  make([]int, lanes),
	}
	blocks := make([][blockSize * blockSize]int32, lanes)
	for l := range blocks {
		randResidualBlock(rng, &blocks[l])
		for i, v := range blocks[l] {
			b.soa[i*lanes+l] = v
		}
	}
	// Transform a partial batch to cover the nb < lanes path too.
	const nb = lanes - 3
	b.forward(nb)
	for l := 0; l < nb; l++ {
		var want [blockSize * blockSize]int32
		fdct8Fixed(&blocks[l], &want)
		for i := range want {
			if got := b.soa[i*lanes+l]; got != want[i] {
				t.Fatalf("lane %d sample %d: batch %d, scalar %d", l, i, got, want[i])
			}
		}
	}
}

// TestQuantTablesConsistent pins the table relationships the scaling chain
// depends on: qstepFix tracks the float QStep law, quantRecip inverts
// qstepFix at 2^-20 relative error, and both are monotonic in QP (rate
// control bisects on QP and needs bits monotone).
func TestQuantTablesConsistent(t *testing.T) {
	for qp := 0; qp <= 51; qp++ {
		wantFix := math.Round(qstepTable[qp] * (1 << coefBits))
		if float64(qstepFix[qp]) != wantFix {
			t.Errorf("qstepFix[%d] = %d, want %.0f", qp, qstepFix[qp], wantFix)
		}
		got := float64(quantRecip[qp]) * float64(qstepFix[qp]) / (1 << quantShift)
		if math.Abs(got-1) > 1e-4 {
			t.Errorf("quantRecip[%d]·qstepFix[%d] = %.6f·2^24, want 1", qp, qp, got)
		}
		if qp > 0 {
			if qstepFix[qp] <= qstepFix[qp-1] {
				t.Errorf("qstepFix not strictly increasing at qp %d", qp)
			}
			if quantRecip[qp] >= quantRecip[qp-1] {
				t.Errorf("quantRecip not strictly decreasing at qp %d", qp)
			}
		}
	}
}

// TestWriteCoeffsEarlyExitMatchesBits drives the nz-aware writer against
// coeffsBits for random sparsities: the early-exit walk must emit exactly
// the arithmetic bit count (EmitBitstream cross-checks this invariant on
// every frame, this pins it in isolation).
func TestWriteCoeffsEarlyExitMatchesBits(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 200; trial++ {
		var levels, got [blockSize * blockSize]int32
		n := rng.Intn(64)
		for i := 0; i < n; i++ {
			levels[rng.Intn(64)] = int32(rng.Intn(2001) - 1000)
		}
		nz := 0
		for _, l := range levels {
			if l != 0 {
				nz++
			}
		}
		w := &BitWriter{}
		writeCoeffs(w, &levels, nz)
		if w.Len() != coeffsBits(&levels, nz) {
			t.Fatalf("trial %d: wrote %d bits, coeffsBits says %d", trial, w.Len(), coeffsBits(&levels, nz))
		}
		r := NewBitReader(w.Bytes())
		if err := readCoeffs(r, &got); err != nil {
			t.Fatal(err)
		}
		if got != levels {
			t.Fatalf("trial %d: round trip mismatch", trial)
		}
	}
}
