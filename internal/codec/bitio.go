// Package codec implements a from-scratch H.264-style macroblock video
// codec: 16×16 macroblocks, I/P GoP structure, five block-matching motion
// estimation strategies (DIA, HEX, UMH, ESA, TESA), 8×8 DCT with H.264-style
// QP→Qstep quantization, zigzag run-level Exp-Golomb entropy coding,
// per-macroblock QP offset maps, and one-pass rate control.
//
// It substitutes for x264 in the DiVE reproduction: bit counts come from a
// real bitstream and reconstruction error from real quantization, so the
// accuracy/bitrate trade-offs the paper measures are driven by genuine
// codec behaviour. The motion vectors the encoder computes are exposed to
// the analytics layer — the "free" motion vectors DiVE builds on.
package codec

import (
	"errors"
	"fmt"
)

// BitWriter accumulates a bitstream MSB-first. Bits are gathered in a
// 64-bit accumulator and spilled to the byte buffer eight at a time, so
// multi-bit symbols (the Exp-Golomb codes that dominate the bitstream) cost
// a couple of shifts instead of one call per bit. The produced bytes are
// identical to the historical bit-at-a-time writer.
type BitWriter struct {
	buf []byte
	// acc holds the nAcc most recently written bits in its low bits, oldest
	// bit highest. flushAcc keeps nAcc < 8 between Write calls, so any
	// n <= 56 fits in one accumulate step.
	acc  uint64
	nAcc int
}

// Reset truncates the writer to an empty stream, keeping the backing buffer
// so a recycled writer reaches a grow-once steady state.
func (w *BitWriter) Reset() {
	w.buf = w.buf[:0]
	w.acc, w.nAcc = 0, 0
}

// flushAcc spills whole bytes from the accumulator, restoring nAcc < 8.
// Bits above position nAcc are garbage from earlier spills; byte() masks
// them off because a spilled byte sits exactly at positions nAcc-8..nAcc-1.
func (w *BitWriter) flushAcc() {
	for w.nAcc >= 8 {
		w.nAcc -= 8
		w.buf = append(w.buf, byte(w.acc>>uint(w.nAcc)))
	}
}

// WriteBit appends one bit.
func (w *BitWriter) WriteBit(b int) {
	w.acc = w.acc<<1 | uint64(b&1)
	w.nAcc++
	if w.nAcc >= 8 {
		w.flushAcc()
	}
}

// WriteBits appends the low n bits of v, most significant first. n may be
// 0; n up to 64 is supported.
func (w *BitWriter) WriteBits(v uint64, n int) {
	if n <= 0 {
		return
	}
	if n > 56 {
		// Split off the high n-32 bits so each chunk fits the accumulator
		// headroom (nAcc < 8 after every call, so 56 more bits always fit).
		w.WriteBits(v>>32, n-32)
		n = 32
	}
	if n < 64 {
		v &= 1<<uint(n) - 1
	}
	w.acc = w.acc<<uint(n) | v
	w.nAcc += n
	if w.nAcc >= 8 {
		w.flushAcc()
	}
}

// Len returns the number of bits written so far.
func (w *BitWriter) Len() int { return len(w.buf)*8 + w.nAcc }

// Bytes flushes the writer (zero-padding the final partial byte) and
// returns the bitstream. The writer remains usable; further writes append
// after the padding, so call Bytes only once per stream. The returned slice
// aliases the writer's backing buffer: it stays valid until the writer is
// Reset and rewritten.
func (w *BitWriter) Bytes() []byte {
	if w.nAcc > 0 {
		w.buf = append(w.buf, byte(w.acc<<uint(8-w.nAcc)))
		w.acc, w.nAcc = 0, 0
	}
	return w.buf
}

// ErrBitstream reports a malformed or truncated bitstream.
var ErrBitstream = errors.New("codec: malformed bitstream")

// BitReader consumes a bitstream produced by BitWriter.
type BitReader struct {
	buf []byte
	pos int // bit position
}

// NewBitReader wraps buf.
func NewBitReader(buf []byte) *BitReader { return &BitReader{buf: buf} }

// ReadBit returns the next bit.
func (r *BitReader) ReadBit() (int, error) {
	if r.pos >= len(r.buf)*8 {
		return 0, fmt.Errorf("%w: read past end at bit %d", ErrBitstream, r.pos)
	}
	b := r.buf[r.pos/8] >> uint(7-r.pos%8) & 1
	r.pos++
	return int(b), nil
}

// ReadBits returns the next n bits as an unsigned value.
func (r *BitReader) ReadBits(n int) (uint64, error) {
	var v uint64
	for i := 0; i < n; i++ {
		b, err := r.ReadBit()
		if err != nil {
			return 0, err
		}
		v = v<<1 | uint64(b)
	}
	return v, nil
}

// Pos returns the current bit position.
func (r *BitReader) Pos() int { return r.pos }
