// Package codec implements a from-scratch H.264-style macroblock video
// codec: 16×16 macroblocks, I/P GoP structure, five block-matching motion
// estimation strategies (DIA, HEX, UMH, ESA, TESA), 8×8 DCT with H.264-style
// QP→Qstep quantization, zigzag run-level Exp-Golomb entropy coding,
// per-macroblock QP offset maps, and one-pass rate control.
//
// It substitutes for x264 in the DiVE reproduction: bit counts come from a
// real bitstream and reconstruction error from real quantization, so the
// accuracy/bitrate trade-offs the paper measures are driven by genuine
// codec behaviour. The motion vectors the encoder computes are exposed to
// the analytics layer — the "free" motion vectors DiVE builds on.
package codec

import (
	"errors"
	"fmt"
)

// BitWriter accumulates a bitstream MSB-first.
type BitWriter struct {
	buf  []byte
	cur  uint8
	nCur int
}

// WriteBit appends one bit.
func (w *BitWriter) WriteBit(b int) {
	w.cur = w.cur<<1 | uint8(b&1)
	w.nCur++
	if w.nCur == 8 {
		w.buf = append(w.buf, w.cur)
		w.cur, w.nCur = 0, 0
	}
}

// WriteBits appends the low n bits of v, most significant first. n may be 0.
func (w *BitWriter) WriteBits(v uint64, n int) {
	for i := n - 1; i >= 0; i-- {
		w.WriteBit(int(v >> uint(i) & 1))
	}
}

// Len returns the number of bits written so far.
func (w *BitWriter) Len() int { return len(w.buf)*8 + w.nCur }

// Bytes flushes the writer (zero-padding the final partial byte) and
// returns the bitstream. The writer remains usable; further writes append
// after the padding, so call Bytes only once per stream.
func (w *BitWriter) Bytes() []byte {
	if w.nCur > 0 {
		w.buf = append(w.buf, w.cur<<uint(8-w.nCur))
		w.cur, w.nCur = 0, 0
	}
	return w.buf
}

// ErrBitstream reports a malformed or truncated bitstream.
var ErrBitstream = errors.New("codec: malformed bitstream")

// BitReader consumes a bitstream produced by BitWriter.
type BitReader struct {
	buf []byte
	pos int // bit position
}

// NewBitReader wraps buf.
func NewBitReader(buf []byte) *BitReader { return &BitReader{buf: buf} }

// ReadBit returns the next bit.
func (r *BitReader) ReadBit() (int, error) {
	if r.pos >= len(r.buf)*8 {
		return 0, fmt.Errorf("%w: read past end at bit %d", ErrBitstream, r.pos)
	}
	b := r.buf[r.pos/8] >> uint(7-r.pos%8) & 1
	r.pos++
	return int(b), nil
}

// ReadBits returns the next n bits as an unsigned value.
func (r *BitReader) ReadBits(n int) (uint64, error) {
	var v uint64
	for i := 0; i < n; i++ {
		b, err := r.ReadBit()
		if err != nil {
			return 0, err
		}
		v = v<<1 | uint64(b)
	}
	return v, nil
}

// Pos returns the current bit position.
func (r *BitReader) Pos() int { return r.pos }
