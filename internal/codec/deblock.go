package codec

import "dive/internal/imgx"

// In-loop deblocking filter, modeled on H.264's: after a frame is
// reconstructed, block boundaries are smoothed when the discontinuity
// across them looks like a quantization artifact (small relative to the
// QP-dependent thresholds) and preserved when it looks like real image
// structure. Encoder and decoder run the identical filter on the identical
// reconstruction, so references stay bit-exact.

// alphaTable/betaTable precompute the QP-dependent thresholds (the filter
// reads them per edge pixel, so the old per-call float multiply was hot).
// Values are identical to the historical formulas.
var alphaTable, betaTable = func() (a, b [52]int) {
	for qp := range a {
		// Roughly exponential in QP like H.264's alpha table.
		av := int(0.8 * qstepTable[qp])
		if av < 2 {
			av = 2
		}
		if av > 60 {
			av = 60
		}
		a[qp] = av
		bv := int(0.4 * qstepTable[qp])
		if bv < 1 {
			bv = 1
		}
		if bv > 24 {
			bv = 24
		}
		b[qp] = bv
	}
	return
}()

// deblockAlpha is the edge-detection threshold: discontinuities larger than
// alpha are treated as true edges and left alone.
func deblockAlpha(qp int) int { return alphaTable[clampQP(qp)] }

// deblockBeta is the local-activity threshold on each side of the edge.
func deblockBeta(qp int) int { return betaTable[clampQP(qp)] }

// deblockFrame filters all 8×8 transform-block boundaries of recon in
// place. qps holds the per-macroblock QP map; each edge uses the average QP
// of the two adjacent macroblocks.
func deblockFrame(recon *imgx.Plane, qps []int, mbw int) {
	w, h := recon.W, recon.H
	// Vertical edges (filtering horizontally across columns).
	for x := blockSize; x < w; x += blockSize {
		for y := 0; y < h; y++ {
			qp := edgeQP(qps, mbw, x, y, x-1, y)
			filterEdge(recon, x, y, 1, 0, qp)
		}
	}
	// Horizontal edges (filtering vertically across rows).
	for y := blockSize; y < h; y += blockSize {
		for x := 0; x < w; x++ {
			qp := edgeQP(qps, mbw, x, y, x, y-1)
			filterEdge(recon, x, y, 0, 1, qp)
		}
	}
}

// edgeQP returns the average QP of the macroblocks containing the two
// pixels adjacent to an edge.
func edgeQP(qps []int, mbw int, x0, y0, x1, y1 int) int {
	q0 := qps[(y0/MBSize)*mbw+x0/MBSize]
	q1 := qps[(y1/MBSize)*mbw+x1/MBSize]
	return (q0 + q1 + 1) / 2
}

// filterEdge conditionally smooths the four pixels straddling the edge at
// (x, y): p1 p0 | q0 q1 along direction (dx, dy), where q0 is at (x, y).
func filterEdge(recon *imgx.Plane, x, y, dx, dy, qp int) {
	alpha := deblockAlpha(qp)
	beta := deblockBeta(qp)
	q0 := int(recon.At(x, y))
	p0 := int(recon.At(x-dx, y-dy))
	diff := q0 - p0
	if diff < 0 {
		diff = -diff
	}
	if diff == 0 || diff >= alpha {
		return // flat already, or a real edge
	}
	p1 := int(recon.At(x-2*dx, y-2*dy))
	q1 := int(recon.At(x+dx, y+dy))
	if absInt(p1-p0) >= beta || absInt(q1-q0) >= beta {
		return // too much structure next to the edge
	}
	// 4-tap smoothing of the two boundary pixels (H.263-style strength).
	d := ((q0-p0)*3 + (p1 - q1)) / 8
	c := beta
	if d > c {
		d = c
	}
	if d < -c {
		d = -c
	}
	recon.Set(x-dx, y-dy, clampPix(float64(p0+d)))
	recon.Set(x, y, clampPix(float64(q0-d)))
}
