package codec

import (
	"bytes"
	"testing"

	"dive/internal/imgx"
)

// encodeScript encodes a fixed, varied frame sequence — an I-frame, plain
// P-frames, a differential-QP P-frame, rate-controlled frames and a forced
// rate-controlled I-frame — and returns every compressed payload.
func encodeScript(t *testing.T, enc *Encoder) [][]byte {
	t.Helper()
	w, h := enc.cfg.Width, enc.cfg.Height
	f0 := texturedFrame(w, h, 7)
	f1 := shiftFrame(f0, 3, 1)
	f2 := shiftFrame(f0, 5, 2)
	f3 := shiftFrame(f0, 8, 3)

	offsets := make([]int, (w/MBSize)*(h/MBSize))
	for i := range offsets {
		if i%3 == 0 {
			offsets[i] = 6 // background macroblocks, DiVE-style δ
		}
	}
	script := []struct {
		frame *imgx.Plane
		opts  EncodeOptions
	}{
		{f0, EncodeOptions{BaseQP: 22}},
		{f1, EncodeOptions{BaseQP: 22}},
		{f2, EncodeOptions{BaseQP: 26, QPOffsets: offsets}},
		{f3, EncodeOptions{TargetBits: 60_000}},
		{f1, EncodeOptions{TargetBits: 90_000, ForceIFrame: true, IFrameBudgetScale: 2}},
		{f2, EncodeOptions{TargetBits: 60_000, QPOffsets: offsets}},
	}
	var out [][]byte
	for i, s := range script {
		ef, err := enc.Encode(s.frame, s.opts)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		out = append(out, ef.Data)
	}
	return out
}

// TestParallelBitstreamBitExact is the tentpole's contract: for every motion
// estimation method, the multi-worker encoder emits byte-identical
// bitstreams to the serial one across I-frames, P-frames, differential QP
// maps and rate-controlled frames.
func TestParallelBitstreamBitExact(t *testing.T) {
	for _, m := range AllMEMethods() {
		for _, subpel := range []bool{false, true} {
			cfg := DefaultConfig(96, 80)
			cfg.Method = m
			cfg.SubPel = subpel
			cfg.Workers = 1
			serial, err := NewEncoder(cfg)
			if err != nil {
				t.Fatal(err)
			}
			cfg.Workers = 8
			par, err := NewEncoder(cfg)
			if err != nil {
				t.Fatal(err)
			}
			want := encodeScript(t, serial)
			got := encodeScript(t, par)
			for i := range want {
				if !bytes.Equal(want[i], got[i]) {
					t.Errorf("method=%s subpel=%v frame %d: parallel bitstream differs from serial (%d vs %d bytes)",
						m, subpel, i, len(got[i]), len(want[i]))
				}
			}
		}
	}
}

// TestParallelDecodesIdentically double-checks the parallel encoder through
// the decoder: reconstructions must equal the encoder's own.
func TestParallelDecodesIdentically(t *testing.T) {
	cfg := DefaultConfig(96, 80)
	cfg.Workers = 8
	enc, err := NewEncoder(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := NewDecoder(cfg)
	if err != nil {
		t.Fatal(err)
	}
	f0 := texturedFrame(96, 80, 7)
	for i, f := range []*imgx.Plane{f0, shiftFrame(f0, 2, 1), shiftFrame(f0, 4, 2)} {
		ef, err := enc.Encode(f, EncodeOptions{BaseQP: 24})
		if err != nil {
			t.Fatal(err)
		}
		df, err := dec.Decode(ef.Data)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(df.Image.Pix, enc.Reconstructed().Pix) {
			t.Fatalf("frame %d: decoder disagrees with parallel encoder reconstruction", i)
		}
	}
}

// TestAnalyzeMotionSeesBufferMutation is the regression test for the
// memoization hazard: a caller that reuses one frame buffer across frames
// must not be served the previous frame's cached motion field. The content
// generation counter (imgx.Plane.Seq) is the fix — pointer identity alone
// cannot distinguish the two frames.
func TestAnalyzeMotionSeesBufferMutation(t *testing.T) {
	w, h := 64, 48
	enc := newTestEncoder(t, w, h)
	buf := texturedFrame(w, h, 3)
	if _, err := enc.Encode(buf.Clone(), EncodeOptions{BaseQP: 20}); err != nil {
		t.Fatal(err)
	}

	shifted := shiftFrame(buf, 4, 2)
	copy(buf.Pix, shifted.Pix)
	buf.Bump()
	first := enc.AnalyzeMotion(buf)
	if first == nil {
		t.Fatal("no motion field")
	}
	eta := first.NonZeroRatio()
	if eta < 0.5 {
		t.Fatalf("sanity: shifted frame should be mostly moving, η = %.2f", eta)
	}

	// Mutate the same buffer in place back to the reference content: the
	// frame is now static and a fresh analysis must say so. Serving the
	// cached field would report the stale η ≈ 1.
	ref := enc.Reconstructed()
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			buf.Set(x, y, ref.At(x, y))
		}
	}
	second := enc.AnalyzeMotion(buf)
	if second.NonZeroRatio() > 0.05 {
		t.Errorf("stale motion memo: static content reported η = %.2f", second.NonZeroRatio())
	}
}

// TestMotionFieldSurvivesOneFollowingEncode pins the documented lifetime of
// EncodedFrame.Motion under buffer recycling: the field from frame i is
// intact after encoding frame i+1.
func TestMotionFieldSurvivesOneFollowingEncode(t *testing.T) {
	w, h := 64, 48
	enc := newTestEncoder(t, w, h)
	f0 := texturedFrame(w, h, 3)
	if _, err := enc.Encode(f0, EncodeOptions{BaseQP: 20}); err != nil {
		t.Fatal(err)
	}
	ef1, err := enc.Encode(shiftFrame(f0, 3, 1), EncodeOptions{BaseQP: 20})
	if err != nil {
		t.Fatal(err)
	}
	mvs := append([]MV(nil), ef1.Motion.MVs...)
	if _, err := enc.Encode(shiftFrame(f0, 6, 2), EncodeOptions{BaseQP: 20}); err != nil {
		t.Fatal(err)
	}
	for i := range mvs {
		if ef1.Motion.MVs[i] != mvs[i] {
			t.Fatalf("MV %d of frame 1 changed during the following encode", i)
		}
	}
}
