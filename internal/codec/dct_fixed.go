package codec

import "math"

// Fixed-point transform and quantization kernels — the production path.
//
// The float64 matrix-multiply DCT cost 128 multiply-adds per 1-D pass; this
// file replaces it with a factorized even/odd (Loeffler-style) butterfly in
// int32 fixed point: 22 multiplies per 1-D pass, integer adds and shifts,
// no float division and no math.Pow anywhere on the encode path. The same
// kernels run in the encoder's quantize/reconstruction passes, the
// rate-control trials and the decoder, so encoder recon stays bit-exact
// with decode and the serial ≡ parallel ≡ pipelined invariants carry over
// unchanged (every kernel is a pure per-block function of its inputs).
//
// Scaling chain (see DESIGN.md §12 for the range proof):
//
//	residual        int32, |r| ≤ 255                 scale 2^0
//	fdct pass 1     (Σ c·r + 2^8)  >> 9              scale 2^pass1Bits
//	fdct pass 2     (Σ c·t + 2^12) >> 13             scale 2^coefBits
//	quantize        (|a|·recip[qp] + 2^23) >> 24     integer level
//	dequantize      level · qstepFix[qp]             scale 2^coefBits
//	idct pass 1     (Σ c·X + 2^12) >> 13             scale 2^pass1Bits
//	idct pass 2     (Σ c·t + 2^16) >> 17             scale 2^0 (residual)
//
// Constants carry constBits = 13 fractional bits; coefficients leave the
// forward transform with coefBits = 4 fractional bits (|coef| ≤ ~2155 true,
// so ≤ ~34500 fixed — comfortably int32). The forward accumulators are
// bounded by 5.9M (pass 1) and 267M (pass 2); the inverse accumulates in
// int64, which also makes the decode path immune to overflow on corrupt
// bitstreams (Go integer wrap is defined behavior either way — the
// robustness property test only demands no panic). Shifts round half-up:
// (acc + 1<<(s-1)) >> s, identical on both passes and in the decoder.
const (
	coefBits   = 4  // fractional bits of fixed-point DCT coefficients
	constBits  = 13 // fractional bits of the trig constants
	pass1Bits  = 4  // extra fractional bits carried between 1-D passes
	quantShift = 24 // fractional bits of the quantizer reciprocals

	fdctShift1 = constBits - pass1Bits            // 9
	fdctShift2 = constBits + pass1Bits - coefBits // 13
	idctShift1 = constBits + coefBits - pass1Bits // 13
	idctShift2 = constBits + pass1Bits            // 17

	fdctRnd1 = 1 << (fdctShift1 - 1)
	fdctRnd2 = 1 << (fdctShift2 - 1)
	idctRnd1 = 1 << (idctShift1 - 1)
	idctRnd2 = 1 << (idctShift2 - 1)
)

// fixK = round(½·cos(kπ/16)·2^constBits): the factorized DCT constants.
// ½·cos(4π/16) doubles as the orthonormal DC gain 1/(2√2).
var (
	fixC1 = fixConst(1)
	fixC2 = fixConst(2)
	fixC3 = fixConst(3)
	fixC4 = fixConst(4)
	fixC5 = fixConst(5)
	fixC6 = fixConst(6)
	fixC7 = fixConst(7)
)

func fixConst(k int) int32 {
	return int32(math.Round(0.5 * math.Cos(float64(k)*math.Pi/16) * (1 << constBits)))
}

// qstepTable is the float QStep law 0.625·2^(qp/6), precomputed so QStep is
// a table lookup instead of a math.Pow per call (the skip threshold reads it
// per macroblock). Package-level, like every table here: the steady-state
// encode loop is pinned at 0 allocs/frame.
var qstepTable = func() [52]float64 {
	var t [52]float64
	for qp := range t {
		t[qp] = 0.625 * math.Pow(2, float64(qp)/6)
	}
	return t
}()

// qstepFix[qp] = round(QStep(qp)·2^coefBits): the integer dequantizer
// multiplier, in the same fixed-point units as the forward transform's
// output — level·qstepFix reconstructs a coefficient directly.
var qstepFix = func() [52]int32 {
	var t [52]int32
	for qp := range t {
		t[qp] = int32(math.Round(qstepTable[qp] * (1 << coefBits)))
	}
	return t
}()

// quantRecip[qp] = round(2^quantShift / qstepFix[qp]): reciprocal
// multipliers replacing the per-coefficient float division in the
// quantizer. Products are formed in int64 (single imul on 64-bit targets),
// so the full |coef|·recip range fits without narrowing the reciprocals.
var quantRecip = func() [52]int64 {
	var t [52]int64
	for qp := range t {
		t[qp] = int64(math.Round((1 << quantShift) / float64(qstepFix[qp])))
	}
	return t
}()

// fdctPass runs one batched 1-D forward DCT pass over nb lanes in
// structure-of-arrays layout: element j of the 8-point group sits at
// in[(base+j*step)*stride + lane], lanes contiguous — the inner loop walks
// 16 parallel streams with unit stride, which is the layout the issue sizes
// for auto-vectorization and what keeps the batch cache-friendly either
// way. The scalar kernels reuse it with stride=1, nb=1, so the batched and
// per-block transforms are the same code and trivially bit-identical.
//
// Even coefficients come from the sum half of the input butterfly (2 + 2 + 2
// multiplies), odd from the difference half (4×4): 22 multiplies per pass.
func fdctPass(in, out []int32, stride, nb, base, step int, rnd int32, shift uint) {
	x0 := in[(base+0*step)*stride:][:nb]
	x1 := in[(base+1*step)*stride:][:nb]
	x2 := in[(base+2*step)*stride:][:nb]
	x3 := in[(base+3*step)*stride:][:nb]
	x4 := in[(base+4*step)*stride:][:nb]
	x5 := in[(base+5*step)*stride:][:nb]
	x6 := in[(base+6*step)*stride:][:nb]
	x7 := in[(base+7*step)*stride:][:nb]
	o0 := out[(base+0*step)*stride:][:nb]
	o1 := out[(base+1*step)*stride:][:nb]
	o2 := out[(base+2*step)*stride:][:nb]
	o3 := out[(base+3*step)*stride:][:nb]
	o4 := out[(base+4*step)*stride:][:nb]
	o5 := out[(base+5*step)*stride:][:nb]
	o6 := out[(base+6*step)*stride:][:nb]
	o7 := out[(base+7*step)*stride:][:nb]
	for b := 0; b < nb; b++ {
		v0, v1, v2, v3 := x0[b], x1[b], x2[b], x3[b]
		v4, v5, v6, v7 := x4[b], x5[b], x6[b], x7[b]
		s0, s1, s2, s3 := v0+v7, v1+v6, v2+v5, v3+v4
		d0, d1, d2, d3 := v0-v7, v1-v6, v2-v5, v3-v4
		e0, e1 := s0+s3, s1+s2
		e2, e3 := s0-s3, s1-s2
		o0[b] = (fixC4*(e0+e1) + rnd) >> shift
		o4[b] = (fixC4*(e0-e1) + rnd) >> shift
		o2[b] = (fixC2*e2 + fixC6*e3 + rnd) >> shift
		o6[b] = (fixC6*e2 - fixC2*e3 + rnd) >> shift
		o1[b] = (fixC1*d0 + fixC3*d1 + fixC5*d2 + fixC7*d3 + rnd) >> shift
		o3[b] = (fixC3*d0 - fixC7*d1 - fixC1*d2 - fixC5*d3 + rnd) >> shift
		o5[b] = (fixC5*d0 - fixC1*d1 + fixC7*d2 + fixC3*d3 + rnd) >> shift
		o7[b] = (fixC7*d0 - fixC5*d1 + fixC3*d2 - fixC1*d3 + rnd) >> shift
	}
}

// idctPass is the inverse counterpart of fdctPass (transposed butterfly,
// int64 accumulators).
func idctPass(in, out []int32, stride, nb, base, step int, rnd int64, shift uint) {
	x0 := in[(base+0*step)*stride:][:nb]
	x1 := in[(base+1*step)*stride:][:nb]
	x2 := in[(base+2*step)*stride:][:nb]
	x3 := in[(base+3*step)*stride:][:nb]
	x4 := in[(base+4*step)*stride:][:nb]
	x5 := in[(base+5*step)*stride:][:nb]
	x6 := in[(base+6*step)*stride:][:nb]
	x7 := in[(base+7*step)*stride:][:nb]
	o0 := out[(base+0*step)*stride:][:nb]
	o1 := out[(base+1*step)*stride:][:nb]
	o2 := out[(base+2*step)*stride:][:nb]
	o3 := out[(base+3*step)*stride:][:nb]
	o4 := out[(base+4*step)*stride:][:nb]
	o5 := out[(base+5*step)*stride:][:nb]
	o6 := out[(base+6*step)*stride:][:nb]
	o7 := out[(base+7*step)*stride:][:nb]
	c1, c2, c3, c4 := int64(fixC1), int64(fixC2), int64(fixC3), int64(fixC4)
	c5, c6, c7 := int64(fixC5), int64(fixC6), int64(fixC7)
	for b := 0; b < nb; b++ {
		v0, v2, v4, v6 := int64(x0[b]), int64(x2[b]), int64(x4[b]), int64(x6[b])
		v1, v3, v5, v7 := int64(x1[b]), int64(x3[b]), int64(x5[b]), int64(x7[b])
		a0, a4 := c4*(v0+v4), c4*(v0-v4)
		t2, t6 := c2*v2+c6*v6, c6*v2-c2*v6
		e0, e1, e2, e3 := a0+t2, a4+t6, a4-t6, a0-t2
		q0 := c1*v1 + c3*v3 + c5*v5 + c7*v7
		q1 := c3*v1 - c7*v3 - c1*v5 - c5*v7
		q2 := c5*v1 - c1*v3 + c7*v5 + c3*v7
		q3 := c7*v1 - c5*v3 + c3*v5 - c1*v7
		o0[b] = int32((e0 + q0 + rnd) >> shift)
		o1[b] = int32((e1 + q1 + rnd) >> shift)
		o2[b] = int32((e2 + q2 + rnd) >> shift)
		o3[b] = int32((e3 + q3 + rnd) >> shift)
		o4[b] = int32((e3 - q3 + rnd) >> shift)
		o5[b] = int32((e2 - q2 + rnd) >> shift)
		o6[b] = int32((e1 - q1 + rnd) >> shift)
		o7[b] = int32((e0 - q0 + rnd) >> shift)
	}
}

// fdct8Fixed computes the fixed-point forward 8×8 DCT of an integer
// residual block: output coefficients carry coefBits fractional bits.
func fdct8Fixed(src, dst *[blockSize * blockSize]int32) {
	var tmp [blockSize * blockSize]int32
	for y := 0; y < blockSize; y++ {
		fdctPass(src[:], tmp[:], 1, 1, y*blockSize, 1, fdctRnd1, fdctShift1)
	}
	for x := 0; x < blockSize; x++ {
		fdctPass(tmp[:], dst[:], 1, 1, x, blockSize, fdctRnd2, fdctShift2)
	}
}

// idct8Fixed inverts fdct8Fixed: fixed-point coefficients in, integer
// residuals out.
func idct8Fixed(src, dst *[blockSize * blockSize]int32) {
	var tmp [blockSize * blockSize]int32
	for x := 0; x < blockSize; x++ {
		idctPass(src[:], tmp[:], 1, 1, x, blockSize, idctRnd1, idctShift1)
	}
	for y := 0; y < blockSize; y++ {
		idctPass(tmp[:], dst[:], 1, 1, y*blockSize, 1, idctRnd2, idctShift2)
	}
}

// quantizeBlockFixed quantizes fixed-point coefficients with the uniform
// deadzone quantizer via a reciprocal multiply (no division), and returns
// the number of nonzero levels so entropy coding can skip its emptiness
// pre-scan and stop after the last coefficient. The rounding convention
// matches the float reference: round half away from zero.
func quantizeBlockFixed(coef *[blockSize * blockSize]int32, qp int, levels *[blockSize * blockSize]int32) int {
	r := quantRecip[qp]
	nz := 0
	for i, c := range coef {
		s := c >> 31 // 0 or -1
		a := (c ^ s) - s
		l := int32((int64(a)*r + 1<<(quantShift-1)) >> quantShift)
		l = (l ^ s) - s
		levels[i] = l
		if l != 0 {
			nz++
		}
	}
	return nz
}

// dequantizeBlockFixed reconstructs fixed-point coefficients from levels.
func dequantizeBlockFixed(levels *[blockSize * blockSize]int32, qp int, coef *[blockSize * blockSize]int32) {
	q := qstepFix[qp]
	for i, l := range levels {
		coef[i] = l * q
	}
}

// dctBatch is the structure-of-arrays scratch for one macroblock row's
// inter-residual transforms: sample position is the outer dimension and
// block index the contiguous inner one, so the 1-D passes stream across
// blocks instead of within them. soa/tmp hold 64 lanes-rows of stride
// lanes; slot maps each lane back to its inter-DCT cache index. Batches
// recycle through a per-worker free list (buildInterDCTCache shards the MB
// rows across the pool).
type dctBatch struct {
	lanes int
	soa   []int32
	tmp   []int32
	slot  []int
}

// getBatch returns recycled or fresh batch scratch sized for one MB row.
func (e *Encoder) getBatch() *dctBatch {
	n := e.mbw * 4
	b := e.batches.Get()
	if b == nil || b.lanes < n {
		b = &dctBatch{
			lanes: n,
			soa:   make([]int32, blockSize*blockSize*n),
			tmp:   make([]int32, blockSize*blockSize*n),
			slot:  make([]int, n),
		}
	}
	return b
}

// forward transforms the first nb lanes in place (soa → soa).
func (b *dctBatch) forward(nb int) {
	for y := 0; y < blockSize; y++ {
		fdctPass(b.soa, b.tmp, b.lanes, nb, y*blockSize, 1, fdctRnd1, fdctShift1)
	}
	for x := 0; x < blockSize; x++ {
		fdctPass(b.tmp, b.soa, b.lanes, nb, x, blockSize, fdctRnd2, fdctShift2)
	}
}
