package codec

import (
	"math/rand"
	"testing"

	"dive/internal/imgx"
)

func TestDeblockThresholdsMonotone(t *testing.T) {
	for qp := 1; qp <= 51; qp++ {
		if deblockAlpha(qp) < deblockAlpha(qp-1) {
			t.Fatalf("alpha not monotone at %d", qp)
		}
		if deblockBeta(qp) < deblockBeta(qp-1) {
			t.Fatalf("beta not monotone at %d", qp)
		}
	}
	if deblockAlpha(0) < 2 || deblockAlpha(51) > 60 {
		t.Error("alpha clamp wrong")
	}
}

func TestDeblockSmoothsArtificialBlockEdge(t *testing.T) {
	// A small step across an 8px boundary (quantization-artifact sized)
	// must shrink; pixels away from the boundary stay put.
	p := imgx.NewPlane(32, 32)
	for y := 0; y < 32; y++ {
		for x := 0; x < 32; x++ {
			if x < 8 {
				p.Set(x, y, 100)
			} else {
				p.Set(x, y, 110)
			}
		}
	}
	qps := []int{30, 30, 30, 30} // 2x2 MBs at QP 30
	before := int(p.At(8, 16)) - int(p.At(7, 16))
	deblockFrame(p, qps, 2)
	after := int(p.At(8, 16)) - int(p.At(7, 16))
	if absInt(after) >= absInt(before) {
		t.Errorf("edge step %d not reduced (now %d)", before, after)
	}
	if p.At(3, 16) != 100 || p.At(20, 16) != 110 {
		t.Error("interior pixels touched")
	}
}

func TestDeblockPreservesRealEdges(t *testing.T) {
	// A strong step (real structure) must be left alone.
	p := imgx.NewPlane(32, 32)
	for y := 0; y < 32; y++ {
		for x := 0; x < 32; x++ {
			if x < 8 {
				p.Set(x, y, 40)
			} else {
				p.Set(x, y, 200)
			}
		}
	}
	qps := []int{20, 20, 20, 20}
	deblockFrame(p, qps, 2)
	if p.At(7, 16) != 40 || p.At(8, 16) != 200 {
		t.Errorf("real edge modified: %d | %d", p.At(7, 16), p.At(8, 16))
	}
}

func TestDeblockImprovesHighQPQuality(t *testing.T) {
	// End to end: at high QP, enabling the loop filter should not hurt
	// (and usually helps) reconstruction PSNR on smooth content.
	src := imgx.NewPlane(96, 96)
	for y := 0; y < 96; y++ {
		for x := 0; x < 96; x++ {
			src.Set(x, y, uint8(80+x+y/2))
		}
	}
	mse := func(deblock bool) float64 {
		cfg := DefaultConfig(96, 96)
		cfg.Deblock = deblock
		enc, _ := NewEncoder(cfg)
		if _, err := enc.Encode(src, EncodeOptions{BaseQP: 38}); err != nil {
			t.Fatal(err)
		}
		return imgx.MSE(src, enc.Reconstructed())
	}
	with, without := mse(true), mse(false)
	if with > without*1.05 {
		t.Errorf("deblocked MSE %v clearly worse than unfiltered %v", with, without)
	}
}

func TestDeblockedStreamsStayBitExact(t *testing.T) {
	// The core in-loop contract: with the filter on, decoder output still
	// matches encoder reconstruction bit for bit across a GoP.
	rng := rand.New(rand.NewSource(77))
	cfg := DefaultConfig(48, 48)
	cfg.GoPSize = 3
	enc, _ := NewEncoder(cfg)
	dec, _ := NewDecoder(cfg)
	for i := 0; i < 6; i++ {
		frame := randomFrame(48, 48, rng)
		ef, err := enc.Encode(frame, EncodeOptions{BaseQP: 33})
		if err != nil {
			t.Fatal(err)
		}
		df, err := dec.Decode(ef.Data)
		if err != nil {
			t.Fatal(err)
		}
		if imgx.MSE(df.Image, enc.Reconstructed()) != 0 {
			t.Fatalf("frame %d: decoder drift with deblocking", i)
		}
	}
}

func TestSampleHalfInterpolation(t *testing.T) {
	p := imgx.NewPlane(4, 4)
	p.Set(0, 0, 10)
	p.Set(1, 0, 30)
	p.Set(0, 1, 50)
	p.Set(1, 1, 70)
	if v := sampleHalf(p, 0, 0); v != 10 {
		t.Errorf("integer sample = %d", v)
	}
	if v := sampleHalf(p, 1, 0); v != 20 {
		t.Errorf("horizontal half = %d, want 20", v)
	}
	if v := sampleHalf(p, 0, 1); v != 30 {
		t.Errorf("vertical half = %d, want 30", v)
	}
	if v := sampleHalf(p, 1, 1); v != 40 {
		t.Errorf("diagonal half = %d, want 40", v)
	}
}

func TestHalfPelFindsSubPixelShift(t *testing.T) {
	// Content shifted by exactly half a pixel (synthesized by averaging
	// neighbors) should yield odd motion vectors.
	rng := rand.New(rand.NewSource(5))
	base := randomFrame(64, 64, rng)
	shifted := imgx.NewPlane(64, 64)
	for y := 0; y < 64; y++ {
		for x := 0; x < 64; x++ {
			shifted.Set(x, y, uint8((int(base.At(x, y))+int(base.At(x-1, y))+1)/2))
		}
	}
	cfg := DefaultConfig(64, 64)
	enc, _ := NewEncoder(cfg)
	if _, err := enc.Encode(base, EncodeOptions{BaseQP: 4}); err != nil {
		t.Fatal(err)
	}
	ef, err := enc.Encode(shifted, EncodeOptions{BaseQP: 4})
	if err != nil {
		t.Fatal(err)
	}
	odd := 0
	total := 0
	for by := 1; by < ef.MBH-1; by++ {
		for bx := 1; bx < ef.MBW-1; bx++ {
			mv := ef.Motion.At(bx, by)
			total++
			if mv.X == -1 && mv.Y == 0 {
				odd++
			}
		}
	}
	if odd < total/2 {
		t.Errorf("only %d/%d MBs found the half-pel shift", odd, total)
	}
}

func TestIntraModesImproveGradients(t *testing.T) {
	// A vertical gradient is predicted perfectly by the horizontal mode;
	// a horizontal gradient by the vertical mode. Either way the bit cost
	// should be well below DC-only prediction.
	vert := imgx.NewPlane(64, 64)
	for y := 0; y < 64; y++ {
		for x := 0; x < 64; x++ {
			vert.Set(x, y, uint8(40+3*y))
		}
	}
	enc, _ := NewEncoder(DefaultConfig(64, 64))
	ef, err := enc.Encode(vert, EncodeOptions{BaseQP: 12})
	if err != nil {
		t.Fatal(err)
	}
	if psnr := imgx.PSNR(imgx.MSE(vert, enc.Reconstructed())); psnr < 40 {
		t.Errorf("gradient I-frame PSNR %v", psnr)
	}
	// The gradient compresses to very little with directional modes.
	if ef.NumBits > 64*64 {
		t.Errorf("gradient I-frame used %d bits", ef.NumBits)
	}
	// Decoder agrees bit-exactly.
	dec, _ := NewDecoder(DefaultConfig(64, 64))
	df, err := dec.Decode(ef.Data)
	if err != nil {
		t.Fatal(err)
	}
	if imgx.MSE(df.Image, enc.Reconstructed()) != 0 {
		t.Error("intra-mode decode drift")
	}
}

func TestChooseIntraModePicksDirections(t *testing.T) {
	recon := imgx.NewPlane(32, 32)
	// Top row bright, left column dark: a block whose content continues
	// the top row should pick vertical.
	for x := 0; x < 32; x++ {
		recon.Set(x, 7, uint8(100+x*4))
	}
	cur := imgx.NewPlane(32, 32)
	for y := 8; y < 16; y++ {
		for x := 8; x < 16; x++ {
			cur.Set(x, y, uint8(100+x*4))
		}
	}
	if m := chooseIntraMode(cur, recon, 8, 8); m != intraModeVertical {
		t.Errorf("mode = %d, want vertical", m)
	}
	// Content continuing the left column picks horizontal.
	recon2 := imgx.NewPlane(32, 32)
	for y := 0; y < 32; y++ {
		recon2.Set(7, y, uint8(60+y*5))
	}
	cur2 := imgx.NewPlane(32, 32)
	for y := 8; y < 16; y++ {
		for x := 8; x < 16; x++ {
			cur2.Set(x, y, uint8(60+y*5))
		}
	}
	if m := chooseIntraMode(cur2, recon2, 8, 8); m != intraModeHorizontal {
		t.Errorf("mode = %d, want horizontal", m)
	}
}
