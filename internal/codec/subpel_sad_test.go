package codec

import (
	"math/rand"
	"testing"

	"dive/internal/imgx"
)

// sadHalfNaive mirrors the original per-pixel sampleHalf implementation of
// sadHalf, including the row-granular early exit; the restructured interior
// fast path must match it bit-for-bit.
func sadHalfNaive(a *imgx.Plane, ax, ay int, b *imgx.Plane, hbx, hby, w, h, earlyExit int) int {
	sum := 0
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			d := int(a.Pix[(ay+y)*a.W+ax+x]) - int(sampleHalf(b, hbx+2*x, hby+2*y))
			if d < 0 {
				d = -d
			}
			sum += d
		}
		if sum >= earlyExit {
			return sum
		}
	}
	return sum
}

func randPlane(rng *rand.Rand, w, h int) *imgx.Plane {
	p := imgx.NewPlane(w, h)
	for i := range p.Pix {
		p.Pix[i] = uint8(rng.Intn(256))
	}
	return p
}

// TestSadHalfMatchesNaive cross-checks sadHalf (interior fast path and
// clamped fallback) against the naive sampleHalf loop over randomized
// positions, all four half-pel phases, and early-exit thresholds.
func TestSadHalfMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	a := randPlane(rng, 80, 64)
	b := randPlane(rng, 80, 64)
	for trial := 0; trial < 5000; trial++ {
		w, h := MBSize, MBSize
		if trial%3 == 0 {
			w, h = 8, 8
		}
		ax := rng.Intn(a.W-w) &^ 1
		ay := rng.Intn(a.H-h) &^ 1
		hbx := rng.Intn(2*(b.W+16)) - 16
		hby := rng.Intn(2*(b.H+16)) - 16
		early := 1 << 30
		if trial%4 == 0 {
			early = rng.Intn(w * h * 64)
		}
		got := sadHalf(a, ax, ay, b, hbx, hby, w, h, early)
		want := sadHalfNaive(a, ax, ay, b, hbx, hby, w, h, early)
		if got != want {
			t.Fatalf("trial %d: sadHalf(%d,%d vs half %d,%d %dx%d early=%d) = %d, naive = %d",
				trial, ax, ay, hbx, hby, w, h, early, got, want)
		}
	}
}

func BenchmarkSadHalf(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	pa := randPlane(rng, 320, 192)
	pb := randPlane(rng, 320, 192)
	b.Run("odd-both", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sadHalf(pa, 64, 64, pb, 2*67+1, 2*62+1, MBSize, MBSize, 1<<30)
		}
	})
	b.Run("odd-x", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sadHalf(pa, 64, 64, pb, 2*67+1, 2*62, MBSize, MBSize, 1<<30)
		}
	})
}
