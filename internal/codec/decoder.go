package codec

import (
	"fmt"

	"dive/internal/imgx"
)

// Decoder reconstructs frames from bitstreams produced by Encoder. It must
// be fed frames in encode order.
type Decoder struct {
	cfg Config
	ref *imgx.Plane
}

// NewDecoder creates a decoder for streams produced with cfg (only the
// frame dimensions matter on the decode side).
func NewDecoder(cfg Config) (*Decoder, error) {
	if cfg.Width <= 0 || cfg.Height <= 0 || cfg.Width%MBSize != 0 || cfg.Height%MBSize != 0 {
		return nil, fmt.Errorf("codec: frame size %dx%d must be positive multiples of %d", cfg.Width, cfg.Height, MBSize)
	}
	return &Decoder{cfg: cfg}, nil
}

// SniffFrameType reads only the frame-type header from a bitstream without
// touching decoder state — servers use it to tell whether a frame is safe to
// decode while the reference is known stale.
func SniffFrameType(data []byte) (FrameType, error) {
	r := NewBitReader(data)
	ft, err := r.ReadUE()
	if err != nil {
		return 0, err
	}
	ftype := FrameType(ft)
	if ftype != IFrame && ftype != PFrame {
		return 0, fmt.Errorf("%w: bad frame type %d", ErrBitstream, ft)
	}
	return ftype, nil
}

// DecodedFrame carries the reconstructed image and decoded side info.
type DecodedFrame struct {
	Type   FrameType
	BaseQP int
	Image  *imgx.Plane
	MVs    []MV
	Modes  []MBMode
}

// Decode parses one frame bitstream and returns the reconstruction.
func (d *Decoder) Decode(data []byte) (*DecodedFrame, error) {
	r := NewBitReader(data)
	ft, err := r.ReadUE()
	if err != nil {
		return nil, err
	}
	ftype := FrameType(ft)
	if ftype != IFrame && ftype != PFrame {
		return nil, fmt.Errorf("%w: bad frame type %d", ErrBitstream, ft)
	}
	baseQP, err := r.ReadUE()
	if err != nil {
		return nil, err
	}
	mbw, err := r.ReadUE()
	if err != nil {
		return nil, err
	}
	mbh, err := r.ReadUE()
	if err != nil {
		return nil, err
	}
	subpelBit, err := r.ReadBit()
	if err != nil {
		return nil, err
	}
	subpel := subpelBit == 1
	deblockBit, err := r.ReadBit()
	if err != nil {
		return nil, err
	}
	deblock := deblockBit == 1
	if int(mbw)*MBSize != d.cfg.Width || int(mbh)*MBSize != d.cfg.Height {
		return nil, fmt.Errorf("%w: stream is %dx%d MBs, decoder configured for %dx%d px",
			ErrBitstream, mbw, mbh, d.cfg.Width, d.cfg.Height)
	}
	if ftype == PFrame && d.ref == nil {
		return nil, fmt.Errorf("%w: P-frame before any I-frame", ErrBitstream)
	}

	w, h := int(mbw), int(mbh)
	recon := imgx.NewPlane(d.cfg.Width, d.cfg.Height)
	mvs := make([]MV, w*h)
	modes := make([]MBMode, w*h)
	qps := make([]int, w*h)
	for i := range qps {
		qps[i] = int(baseQP)
	}

	for by := 0; by < h; by++ {
		for bx := 0; bx < w; bx++ {
			i := by*w + bx
			px, py := bx*MBSize, by*MBSize
			m, err := r.ReadUE()
			if err != nil {
				return nil, err
			}
			mode := MBMode(m)
			modes[i] = mode
			if (mode == ModeSkip || mode == ModeInter) && d.ref == nil {
				return nil, fmt.Errorf("%w: inter macroblock without reference", ErrBitstream)
			}
			switch mode {
			case ModeSkip:
				pred := predictMV(mvs, w, bx, by)
				mvs[i] = pred
				motionCompensate(recon, d.ref, px, py, pred, subpel)
			case ModeInter:
				dx, err := r.ReadSE()
				if err != nil {
					return nil, err
				}
				dy, err := r.ReadSE()
				if err != nil {
					return nil, err
				}
				dqp, err := r.ReadSE()
				if err != nil {
					return nil, err
				}
				pred := predictMV(mvs, w, bx, by)
				mv := MV{pred.X + int16(dx), pred.Y + int16(dy)}
				mvs[i] = mv
				qp := clampQP(int(baseQP) + int(dqp))
				qps[i] = qp
				if d.cfg.RefTransform {
					err = refDecodeInterMB(r, d.ref, recon, px, py, mv, qp, subpel)
				} else {
					err = decodeInterMB(r, d.ref, recon, px, py, mv, qp, subpel)
				}
				if err != nil {
					return nil, err
				}
			case ModeIntra:
				dqp, err := r.ReadSE()
				if err != nil {
					return nil, err
				}
				qp := clampQP(int(baseQP) + int(dqp))
				qps[i] = qp
				if d.cfg.RefTransform {
					err = refDecodeIntraMB(r, recon, px, py, qp)
				} else {
					err = decodeIntraMB(r, recon, px, py, qp)
				}
				if err != nil {
					return nil, err
				}
			default:
				return nil, fmt.Errorf("%w: bad MB mode %d", ErrBitstream, m)
			}
		}
	}
	if deblock {
		deblockFrame(recon, qps, w)
	}
	d.ref = recon
	return &DecodedFrame{
		Type: ftype, BaseQP: int(baseQP),
		Image: recon, MVs: mvs, Modes: modes,
	}, nil
}

// errBadIntraMode is shared by the fixed and reference intra decoders.
func errBadIntraMode(m uint32) error {
	return fmt.Errorf("%w: bad intra mode %d", ErrBitstream, m)
}

// decodeInterMB reads residual coefficients and reconstructs one inter MB
// with the same fixed-point kernels the encoder reconstructed with, so the
// decode stays bit-exact with the encoder's reference.
func decodeInterMB(r *BitReader, ref, recon *imgx.Plane, px, py int, mv MV, qp int, subpel bool) error {
	var dct, res [blockSize * blockSize]int32
	var levels [blockSize * blockSize]int32
	for by := 0; by < MBSize; by += blockSize {
		for bx := 0; bx < MBSize; bx += blockSize {
			if err := readCoeffs(r, &levels); err != nil {
				return err
			}
			dequantizeBlockFixed(&levels, qp, &dct)
			idct8Fixed(&dct, &res)
			for y := 0; y < blockSize; y++ {
				for x := 0; x < blockSize; x++ {
					cx, cy := px+bx+x, py+by+y
					v := refSampleI(ref, cx, cy, mv, subpel) + res[y*blockSize+x]
					recon.Set(cx, cy, clampPixI(v))
				}
			}
		}
	}
	return nil
}

// decodeIntraMB reads per-block prediction modes and coefficients and
// reconstructs one intra MB, mirroring encodeIntraMB.
func decodeIntraMB(r *BitReader, recon *imgx.Plane, px, py int, qp int) error {
	var pred, dct, res [blockSize * blockSize]int32
	var levels [blockSize * blockSize]int32
	for by := 0; by < MBSize; by += blockSize {
		for bx := 0; bx < MBSize; bx += blockSize {
			m, err := r.ReadUE()
			if err != nil {
				return err
			}
			if m >= numIntraModes {
				return errBadIntraMode(m)
			}
			if err := readCoeffs(r, &levels); err != nil {
				return err
			}
			intraPredict(recon, px+bx, py+by, int(m), &pred)
			dequantizeBlockFixed(&levels, qp, &dct)
			idct8Fixed(&dct, &res)
			for y := 0; y < blockSize; y++ {
				for x := 0; x < blockSize; x++ {
					recon.Set(px+bx+x, py+by+y, clampPixI(pred[y*blockSize+x]+res[y*blockSize+x]))
				}
			}
		}
	}
	return nil
}
