package codec

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBitWriterReaderRoundTrip(t *testing.T) {
	w := &BitWriter{}
	w.WriteBit(1)
	w.WriteBits(0b1011, 4)
	w.WriteBits(0xDEAD, 16)
	nbits := w.Len()
	if nbits != 21 {
		t.Fatalf("Len = %d", nbits)
	}
	r := NewBitReader(w.Bytes())
	if b, _ := r.ReadBit(); b != 1 {
		t.Error("first bit")
	}
	if v, _ := r.ReadBits(4); v != 0b1011 {
		t.Errorf("nibble = %b", v)
	}
	if v, _ := r.ReadBits(16); v != 0xDEAD {
		t.Errorf("word = %x", v)
	}
}

func TestBitReaderPastEnd(t *testing.T) {
	r := NewBitReader([]byte{0xFF})
	if _, err := r.ReadBits(8); err != nil {
		t.Fatal(err)
	}
	if _, err := r.ReadBit(); !errors.Is(err, ErrBitstream) {
		t.Errorf("expected ErrBitstream, got %v", err)
	}
}

func TestExpGolombRoundTrip(t *testing.T) {
	w := &BitWriter{}
	ues := []uint32{0, 1, 2, 7, 8, 100, 65535}
	ses := []int32{0, 1, -1, 2, -2, 17, -100, 32000, -32000}
	for _, v := range ues {
		w.WriteUE(v)
	}
	for _, v := range ses {
		w.WriteSE(v)
	}
	r := NewBitReader(w.Bytes())
	for _, want := range ues {
		got, err := r.ReadUE()
		if err != nil || got != want {
			t.Fatalf("ReadUE = %d,%v want %d", got, err, want)
		}
	}
	for _, want := range ses {
		got, err := r.ReadSE()
		if err != nil || got != want {
			t.Fatalf("ReadSE = %d,%v want %d", got, err, want)
		}
	}
}

func TestExpGolombProperty(t *testing.T) {
	f := func(vals []int32) bool {
		w := &BitWriter{}
		for _, v := range vals {
			w.WriteSE(v % 1_000_000)
		}
		r := NewBitReader(w.Bytes())
		for _, v := range vals {
			got, err := r.ReadSE()
			if err != nil || got != v%1_000_000 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestExpGolombCodeLengths(t *testing.T) {
	// ue(0) is a single bit; codes grow logarithmically.
	w := &BitWriter{}
	w.WriteUE(0)
	if w.Len() != 1 {
		t.Errorf("ue(0) length = %d, want 1", w.Len())
	}
	w2 := &BitWriter{}
	w2.WriteUE(6) // 00111xx → 5 bits
	if w2.Len() != 5 {
		t.Errorf("ue(6) length = %d, want 5", w2.Len())
	}
}

func TestCoeffsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 50; trial++ {
		var levels, got [blockSize * blockSize]int32
		// Sparse blocks like real quantized DCT output.
		for i := 0; i < rng.Intn(12); i++ {
			levels[rng.Intn(64)] = int32(rng.Intn(41) - 20)
		}
		w := &BitWriter{}
		writeCoeffs(w, &levels)
		r := NewBitReader(w.Bytes())
		if err := readCoeffs(r, &got); err != nil {
			t.Fatal(err)
		}
		if levels != got {
			t.Fatalf("trial %d: coeff mismatch", trial)
		}
	}
}

func TestCoeffsEmptyBlockIsOneBit(t *testing.T) {
	var levels [blockSize * blockSize]int32
	w := &BitWriter{}
	writeCoeffs(w, &levels)
	if w.Len() != 1 {
		t.Errorf("empty block = %d bits, want 1", w.Len())
	}
}

func TestZigzagIsPermutation(t *testing.T) {
	seen := map[int]bool{}
	for _, v := range zigzag8 {
		if v < 0 || v >= 64 || seen[v] {
			t.Fatalf("zigzag invalid at %d", v)
		}
		seen[v] = true
	}
	if zigzag8[0] != 0 {
		t.Error("zigzag must start at DC")
	}
	if zigzag8[1] != 1 || zigzag8[2] != 8 {
		t.Errorf("zigzag start = %v", zigzag8[:4])
	}
}
