package codec

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBitWriterReaderRoundTrip(t *testing.T) {
	w := &BitWriter{}
	w.WriteBit(1)
	w.WriteBits(0b1011, 4)
	w.WriteBits(0xDEAD, 16)
	nbits := w.Len()
	if nbits != 21 {
		t.Fatalf("Len = %d", nbits)
	}
	r := NewBitReader(w.Bytes())
	if b, _ := r.ReadBit(); b != 1 {
		t.Error("first bit")
	}
	if v, _ := r.ReadBits(4); v != 0b1011 {
		t.Errorf("nibble = %b", v)
	}
	if v, _ := r.ReadBits(16); v != 0xDEAD {
		t.Errorf("word = %x", v)
	}
}

func TestBitReaderPastEnd(t *testing.T) {
	r := NewBitReader([]byte{0xFF})
	if _, err := r.ReadBits(8); err != nil {
		t.Fatal(err)
	}
	if _, err := r.ReadBit(); !errors.Is(err, ErrBitstream) {
		t.Errorf("expected ErrBitstream, got %v", err)
	}
}

func TestExpGolombRoundTrip(t *testing.T) {
	w := &BitWriter{}
	ues := []uint32{0, 1, 2, 7, 8, 100, 65535}
	ses := []int32{0, 1, -1, 2, -2, 17, -100, 32000, -32000}
	for _, v := range ues {
		w.WriteUE(v)
	}
	for _, v := range ses {
		w.WriteSE(v)
	}
	r := NewBitReader(w.Bytes())
	for _, want := range ues {
		got, err := r.ReadUE()
		if err != nil || got != want {
			t.Fatalf("ReadUE = %d,%v want %d", got, err, want)
		}
	}
	for _, want := range ses {
		got, err := r.ReadSE()
		if err != nil || got != want {
			t.Fatalf("ReadSE = %d,%v want %d", got, err, want)
		}
	}
}

func TestExpGolombProperty(t *testing.T) {
	f := func(vals []int32) bool {
		w := &BitWriter{}
		for _, v := range vals {
			w.WriteSE(v % 1_000_000)
		}
		r := NewBitReader(w.Bytes())
		for _, v := range vals {
			got, err := r.ReadSE()
			if err != nil || got != v%1_000_000 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestExpGolombCodeLengths(t *testing.T) {
	// ue(0) is a single bit; codes grow logarithmically.
	w := &BitWriter{}
	w.WriteUE(0)
	if w.Len() != 1 {
		t.Errorf("ue(0) length = %d, want 1", w.Len())
	}
	w2 := &BitWriter{}
	w2.WriteUE(6) // 00111xx → 5 bits
	if w2.Len() != 5 {
		t.Errorf("ue(6) length = %d, want 5", w2.Len())
	}
}

func TestCoeffsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 50; trial++ {
		var levels, got [blockSize * blockSize]int32
		// Sparse blocks like real quantized DCT output.
		for i := 0; i < rng.Intn(12); i++ {
			levels[rng.Intn(64)] = int32(rng.Intn(41) - 20)
		}
		nz := 0
		for _, l := range levels {
			if l != 0 {
				nz++
			}
		}
		w := &BitWriter{}
		writeCoeffs(w, &levels, nz)
		r := NewBitReader(w.Bytes())
		if err := readCoeffs(r, &got); err != nil {
			t.Fatal(err)
		}
		if levels != got {
			t.Fatalf("trial %d: coeff mismatch", trial)
		}
	}
}

func TestCoeffsEmptyBlockIsOneBit(t *testing.T) {
	var levels [blockSize * blockSize]int32
	w := &BitWriter{}
	writeCoeffs(w, &levels, 0)
	if w.Len() != 1 {
		t.Errorf("empty block = %d bits, want 1", w.Len())
	}
}

func TestZigzagIsPermutation(t *testing.T) {
	seen := map[int]bool{}
	for _, v := range zigzag8 {
		if v < 0 || v >= 64 || seen[v] {
			t.Fatalf("zigzag invalid at %d", v)
		}
		seen[v] = true
	}
	if zigzag8[0] != 0 {
		t.Error("zigzag must start at DC")
	}
	if zigzag8[1] != 1 || zigzag8[2] != 8 {
		t.Errorf("zigzag start = %v", zigzag8[:4])
	}
}

// refBitWriter is the historical bit-at-a-time writer, kept as the oracle
// for the accumulator-based fast path.
type refBitWriter struct {
	buf  []byte
	cur  uint8
	nCur int
}

func (w *refBitWriter) writeBit(b int) {
	w.cur = w.cur<<1 | uint8(b&1)
	w.nCur++
	if w.nCur == 8 {
		w.buf = append(w.buf, w.cur)
		w.cur, w.nCur = 0, 0
	}
}

func (w *refBitWriter) writeBits(v uint64, n int) {
	for i := n - 1; i >= 0; i-- {
		w.writeBit(int(v >> uint(i) & 1))
	}
}

func (w *refBitWriter) lenBits() int { return len(w.buf)*8 + w.nCur }

func (w *refBitWriter) bytes() []byte {
	if w.nCur > 0 {
		w.buf = append(w.buf, w.cur<<uint(8-w.nCur))
		w.cur, w.nCur = 0, 0
	}
	return w.buf
}

// TestBitWriterMatchesReference drives the buffered multi-bit writer and the
// bit-at-a-time reference through the same randomized operation stream —
// single bits, fields of every width up to 64, and Exp-Golomb codes up to
// the 65-bit maximum — and requires identical lengths and bytes.
func TestBitWriterMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		var got BitWriter
		var want refBitWriter
		for op := 0; op < 100; op++ {
			switch rng.Intn(4) {
			case 0:
				b := rng.Intn(2)
				got.WriteBit(b)
				want.writeBit(b)
			case 1:
				n := rng.Intn(65) // 0..64
				v := rng.Uint64()
				got.WriteBits(v, n)
				want.writeBits(v, n)
			case 2:
				v := uint32(rng.Uint64()) // includes MaxUint32 region
				got.WriteUE(v)
				x := uint64(v) + 1
				n := bitLen64(x)
				want.writeBits(0, n-1)
				want.writeBits(x, n)
			case 3:
				v := int32(rng.Uint64())
				got.WriteSE(v)
				x := uint64(seToUE(v)) + 1
				n := bitLen64(x)
				want.writeBits(0, n-1)
				want.writeBits(x, n)
			}
			if got.Len() != want.lenBits() {
				t.Fatalf("trial %d op %d: Len = %d, reference %d", trial, op, got.Len(), want.lenBits())
			}
		}
		if !bytes.Equal(got.Bytes(), want.bytes()) {
			t.Fatalf("trial %d: bytes differ from reference", trial)
		}
	}
}

// TestBitWriterUEMax covers the widest code path: WriteUE(MaxUint32) is a
// 65-bit symbol, exercising the accumulator split.
func TestBitWriterUEMax(t *testing.T) {
	var w BitWriter
	w.WriteUE(math.MaxUint32)
	if w.Len() != 65 {
		t.Fatalf("WriteUE(MaxUint32) wrote %d bits, want 65", w.Len())
	}
	r := NewBitReader(w.Bytes())
	v, err := r.ReadUE()
	if err != nil {
		t.Fatal(err)
	}
	if v != math.MaxUint32 {
		t.Fatalf("round trip = %d, want MaxUint32", v)
	}
}

// TestBitWriterReset pins the grow-once contract: a Reset writer keeps its
// backing capacity and produces byte-identical output without reallocating.
func TestBitWriterReset(t *testing.T) {
	var w BitWriter
	write := func() []byte {
		for i := 0; i < 300; i++ {
			w.WriteUE(uint32(i * 7))
			w.WriteBit(i & 1)
		}
		return append([]byte(nil), w.Bytes()...)
	}
	first := write()
	w.Reset()
	if w.Len() != 0 {
		t.Fatalf("Len after Reset = %d, want 0", w.Len())
	}
	allocs := testing.AllocsPerRun(10, func() {
		w.Reset()
		write()
	})
	// write() itself copies the output for comparison (1 alloc) but the
	// writer must not grow again.
	if allocs > 1 {
		t.Errorf("rewrite after Reset: %.1f allocs, want <= 1 (grow-once)", allocs)
	}
	w.Reset()
	if second := write(); !bytes.Equal(first, second) {
		t.Error("Reset writer produced different bytes")
	}
}
