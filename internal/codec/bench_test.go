package codec

import (
	"math/rand"
	"testing"

	"dive/internal/imgx"
)

// benchFrames returns a pair of consecutive-looking frames for encode
// benchmarks.
func benchFrames() (*imgx.Plane, *imgx.Plane) {
	rng := rand.New(rand.NewSource(1))
	a := randomFrame(320, 192, rng)
	b := imgx.NewPlane(320, 192)
	for y := 0; y < b.H; y++ {
		for x := 0; x < b.W; x++ {
			b.Set(x, y, a.At(x-3, y-1))
		}
	}
	return a, b
}

func BenchmarkEncodePFrame(b *testing.B) {
	f0, f1 := benchFrames()
	enc, _ := NewEncoder(DefaultConfig(320, 192))
	if _, err := enc.Encode(f0, EncodeOptions{BaseQP: 20}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Alternate so every encode is a non-trivial P-frame.
		f := f1
		if i%2 == 1 {
			f = f0
		}
		if _, err := enc.Encode(f, EncodeOptions{BaseQP: 20}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEncodeRateControlled(b *testing.B) {
	f0, f1 := benchFrames()
	enc, _ := NewEncoder(DefaultConfig(320, 192))
	if _, err := enc.Encode(f0, EncodeOptions{BaseQP: 20}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := f1
		if i%2 == 1 {
			f = f0
		}
		if _, err := enc.Encode(f, EncodeOptions{TargetBits: 150_000}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMotionSearch(b *testing.B) {
	f0, f1 := benchFrames()
	for _, m := range AllMEMethods() {
		b.Run(m.String(), func(b *testing.B) {
			cfg := DefaultConfig(320, 192)
			cfg.Method = m
			enc, _ := NewEncoder(cfg)
			if _, err := enc.Encode(f0, EncodeOptions{BaseQP: 20}); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// Invalidate the analysis cache by alternating frames.
				f := f1
				if i%2 == 1 {
					f = f0
				}
				enc.AnalyzeMotion(f)
				enc.analyzed = nil
			}
		})
	}
}

// BenchmarkEncodeParallel measures the full encode path with the pool sized
// to GOMAXPROCS, so `go test -cpu 1,4` compares serial and parallel encoding
// of bit-identical streams.
func BenchmarkEncodeParallel(b *testing.B) {
	f0, f1 := benchFrames()
	cfg := DefaultConfig(320, 192)
	cfg.Workers = 0 // GOMAXPROCS-sized: serial at -cpu 1, parallel at -cpu 4
	enc, _ := NewEncoder(cfg)
	if _, err := enc.Encode(f0, EncodeOptions{BaseQP: 20}); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := f1
		if i%2 == 1 {
			f = f0
		}
		if _, err := enc.Encode(f, EncodeOptions{TargetBits: 150_000}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAnalyzeMotionParallel measures wavefront motion search alone with
// a GOMAXPROCS-sized pool.
func BenchmarkAnalyzeMotionParallel(b *testing.B) {
	f0, f1 := benchFrames()
	cfg := DefaultConfig(320, 192)
	cfg.Workers = 0
	enc, _ := NewEncoder(cfg)
	if _, err := enc.Encode(f0, EncodeOptions{BaseQP: 20}); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := f1
		if i%2 == 1 {
			f = f0
		}
		enc.AnalyzeMotion(f)
		enc.analyzed = nil
	}
}

// BenchmarkDCT compares the float64 reference transform (the pre-switch
// production kernel) against the fixed-point factorized kernel, forward +
// inverse per op.
func BenchmarkDCT(b *testing.B) {
	b.Run("ref", func(b *testing.B) {
		var src, dst [blockSize * blockSize]float64
		for i := range src {
			src[i] = float64(i%511 - 255)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			refFdct8(&src, &dst)
			refIdct8(&dst, &src)
		}
	})
	b.Run("fixed", func(b *testing.B) {
		var src, dst [blockSize * blockSize]int32
		for i := range src {
			src[i] = int32(i%511 - 255)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			fdct8Fixed(&src, &dst)
			idct8Fixed(&dst, &src)
		}
	})
}

// BenchmarkDCTBatch compares per-block forward transforms against the
// structure-of-arrays row batch over one macroblock row's worth of blocks
// (reported per block-row, 80 blocks at 320 px width).
func BenchmarkDCTBatch(b *testing.B) {
	const lanes = (320 / MBSize) * 4
	b.Run("perblock", func(b *testing.B) {
		var src, dst [blockSize * blockSize]int32
		for i := range src {
			src[i] = int32(i%511 - 255)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for l := 0; l < lanes; l++ {
				fdct8Fixed(&src, &dst)
			}
		}
	})
	b.Run("soa", func(b *testing.B) {
		batch := &dctBatch{
			lanes: lanes,
			soa:   make([]int32, blockSize*blockSize*lanes),
			tmp:   make([]int32, blockSize*blockSize*lanes),
			slot:  make([]int, lanes),
		}
		for i := range batch.soa {
			batch.soa[i] = int32(i%511 - 255)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			batch.forward(lanes)
		}
	})
}

// BenchmarkQuantize compares the float-division reference quantizer against
// the reciprocal-multiply fixed-point quantizer.
func BenchmarkQuantize(b *testing.B) {
	b.Run("ref", func(b *testing.B) {
		var dct [blockSize * blockSize]float64
		var levels [blockSize * blockSize]int32
		for i := range dct {
			dct[i] = float64(i%101-50) * 3.7
		}
		qstep := QStep(28)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			refQuantizeBlock(&dct, qstep, &levels)
		}
	})
	b.Run("fixed", func(b *testing.B) {
		var coef [blockSize * blockSize]int32
		var levels [blockSize * blockSize]int32
		for i := range coef {
			coef[i] = int32((i%101 - 50) * 59)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			quantizeBlockFixed(&coef, 28, &levels)
		}
	})
}

func BenchmarkDeblockFrame(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	p := randomFrame(320, 192, rng)
	qps := make([]int, (320/MBSize)*(192/MBSize))
	for i := range qps {
		qps[i] = 30
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		deblockFrame(p, qps, 320/MBSize)
	}
}

// steadyStateBench drives a serial streaming encode loop for -benchmem
// inspection; reuse selects the pooled (ReuseFrames) configuration. The
// pooled variant's allocs/op is pinned at 0 by TestEncodeSteadyStateZeroAlloc
// and gated in CI via make bench-alloc.
func steadyStateBench(b *testing.B, reuse bool) {
	cfg := DefaultConfig(320, 192)
	cfg.Workers = 1
	cfg.GoPSize = 48
	cfg.ReuseFrames = reuse
	enc, err := NewEncoder(cfg)
	if err != nil {
		b.Fatal(err)
	}
	f0, f1 := benchFrames()
	frames := []*imgx.Plane{f0, f1}
	for i := 0; i < 8; i++ {
		if _, err := enc.Encode(frames[i%2], EncodeOptions{TargetBits: 150_000}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := enc.Encode(frames[i%2], EncodeOptions{TargetBits: 150_000}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEncodeSteadyState(b *testing.B)      { steadyStateBench(b, true) }
func BenchmarkEncodeSteadyStateFresh(b *testing.B) { steadyStateBench(b, false) }
