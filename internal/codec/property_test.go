package codec

import (
	"math/rand"
	"testing"
	"testing/quick"

	"dive/internal/imgx"
)

// randomFrame builds a frame with mixed smooth and noisy content.
func randomFrame(w, h int, rng *rand.Rand) *imgx.Plane {
	p := imgx.NewPlane(w, h)
	base := rng.Intn(200)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			v := base + (x*y)%60 + rng.Intn(30)
			if v > 255 {
				v = 255
			}
			p.Pix[y*w+x] = uint8(v)
		}
	}
	return p
}

// Property: for any frame sequence and any QP, the decoder output is
// bit-exact with the encoder's reconstruction — the fundamental codec
// contract that keeps agent and server in sync.
func TestPropertyDecoderMatchesEncoderRecon(t *testing.T) {
	f := func(seed int64, qpRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		qp := int(qpRaw % 52)
		cfg := DefaultConfig(48, 32)
		cfg.GoPSize = 3
		enc, err := NewEncoder(cfg)
		if err != nil {
			return false
		}
		dec, err := NewDecoder(cfg)
		if err != nil {
			return false
		}
		for i := 0; i < 4; i++ {
			frame := randomFrame(48, 32, rng)
			ef, err := enc.Encode(frame, EncodeOptions{BaseQP: qp})
			if err != nil {
				return false
			}
			df, err := dec.Decode(ef.Data)
			if err != nil {
				return false
			}
			if imgx.MSE(df.Image, enc.Reconstructed()) != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// Property: reconstruction error is bounded by the quantizer — per-pixel
// error stays well under Qstep plus rounding slack.
func TestPropertyReconErrorBoundedByQP(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, qp := range []int{0, 10, 25, 40, 51} {
		enc, _ := NewEncoder(DefaultConfig(48, 32))
		frame := randomFrame(48, 32, rng)
		if _, err := enc.Encode(frame, EncodeOptions{BaseQP: qp}); err != nil {
			t.Fatal(err)
		}
		mse := imgx.MSE(frame, enc.Reconstructed())
		// Uniform quantization noise bound: MSE ≈ Qstep²/12 per
		// coefficient; allow a generous 2× factor for clipping and DC
		// prediction effects.
		bound := QStep(qp)*QStep(qp)/6 + 4
		if mse > bound {
			t.Errorf("QP %d: MSE %v exceeds bound %v", qp, mse, bound)
		}
	}
}

// Property: the decoder never panics on corrupted bitstreams; it returns an
// error or (for benign corruption) a decodable frame.
func TestPropertyDecoderRobustToCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	enc, _ := NewEncoder(DefaultConfig(48, 32))
	frame := randomFrame(48, 32, rng)
	ef, err := enc.Encode(frame, EncodeOptions{BaseQP: 24})
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 200; trial++ {
		data := make([]byte, len(ef.Data))
		copy(data, ef.Data)
		// Flip up to 8 random bits.
		for k := 0; k < 1+rng.Intn(8); k++ {
			i := rng.Intn(len(data))
			data[i] ^= 1 << uint(rng.Intn(8))
		}
		dec, _ := NewDecoder(DefaultConfig(48, 32))
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("trial %d: decoder panicked: %v", trial, r)
				}
			}()
			dec.Decode(data) // error or success are both acceptable
		}()
	}
	// Truncations must error, never panic.
	for cut := 0; cut < len(ef.Data); cut += 7 {
		dec, _ := NewDecoder(DefaultConfig(48, 32))
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("truncation at %d: decoder panicked: %v", cut, r)
				}
			}()
			dec.Decode(ef.Data[:cut])
		}()
	}
}

// Property: all five motion search strategies return vectors within the
// predictor-centered window and report a cost consistent with the actual
// SAD at the returned vector.
func TestPropertySearchRespectsWindow(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	cur := randomFrame(96, 64, rng)
	ref := randomFrame(96, 64, rng)
	for _, m := range AllMEMethods() {
		for trial := 0; trial < 10; trial++ {
			pred := MV{int16(rng.Intn(9) - 4), int16(rng.Intn(9) - 4)}
			mbx := MBSize * (1 + rng.Intn(3))
			mby := MBSize * (1 + rng.Intn(2))
			mv, cost := SearchMB(cur, ref, mbx, mby, pred, m, 8)
			if absInt(int(mv.X)-int(pred.X)) > 8 || absInt(int(mv.Y)-int(pred.Y)) > 8 {
				t.Fatalf("%v: MV %v outside window around %v", m, mv, pred)
			}
			if cost < 0 {
				t.Fatalf("%v: negative cost", m)
			}
		}
	}
}

// Property: exhaustive search is never beaten (in rate-distortion cost) by
// the heuristic searches for the same predictor, since it evaluates every
// candidate they can reach.
func TestPropertyESAIsOptimal(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	base := randomFrame(96, 64, rng)
	ref := base.Clone()
	// Add noise so the cost surface is non-trivial.
	cur := randomFrame(96, 64, rng)
	for i := range cur.Pix {
		cur.Pix[i] = uint8((int(base.Pix[i]) + int(cur.Pix[i])) / 2)
	}
	for trial := 0; trial < 20; trial++ {
		mbx := MBSize * rng.Intn(96/MBSize)
		mby := MBSize * rng.Intn(64/MBSize)
		pred := MV{}
		_, esaCost := SearchMB(cur, ref, mbx, mby, pred, MEEsa, 6)
		for _, m := range []MEMethod{MEDia, MEHex, MEUmh} {
			_, c := SearchMB(cur, ref, mbx, mby, pred, m, 6)
			if c < esaCost {
				t.Fatalf("%v cost %d beat ESA %d at (%d,%d)", m, c, esaCost, mbx, mby)
			}
		}
	}
}

// Property: header QPs decoded by the decoder equal the per-MB QPs the
// encoder reported.
func TestPropertyQPMapSurvivesTransport(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	cfg := DefaultConfig(48, 48)
	enc, _ := NewEncoder(cfg)
	mbw, mbh := enc.MBDims()
	frame := randomFrame(48, 48, rng)
	offsets := make([]int, mbw*mbh)
	for i := range offsets {
		offsets[i] = rng.Intn(20)
	}
	ef, err := enc.Encode(frame, EncodeOptions{BaseQP: 10, QPOffsets: offsets})
	if err != nil {
		t.Fatal(err)
	}
	for i, qp := range ef.QPs {
		if qp != clampQP(10+offsets[i]) {
			t.Fatalf("MB %d: QP %d, want %d", i, qp, 10+offsets[i])
		}
	}
	dec, _ := NewDecoder(cfg)
	if _, err := dec.Decode(ef.Data); err != nil {
		t.Fatal(err)
	}
}
