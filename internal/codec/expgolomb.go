package codec

import "math/bits"

// Exp-Golomb codes, the universal integer codes H.264 uses for syntax
// elements. ue codes non-negative integers; se maps signed integers onto ue
// with the standard zigzag (0, 1, -1, 2, -2, ...).

// WriteUE appends the unsigned Exp-Golomb code of v. The code is n-1 zeros
// followed by the n bits of v+1 (whose top bit is 1), which is exactly v+1
// written in a 2n-1 bit field — one WriteBits call.
func (w *BitWriter) WriteUE(v uint32) {
	x := uint64(v) + 1
	n := bitLen64(x)
	w.WriteBits(x, 2*n-1)
}

// WriteSE appends the signed Exp-Golomb code of v.
func (w *BitWriter) WriteSE(v int32) {
	w.WriteUE(seToUE(v))
}

// ReadUE reads an unsigned Exp-Golomb code.
func (r *BitReader) ReadUE() (uint32, error) {
	n := 0
	for {
		b, err := r.ReadBit()
		if err != nil {
			return 0, err
		}
		if b == 1 {
			break
		}
		n++
		if n > 32 {
			return 0, ErrBitstream
		}
	}
	rest, err := r.ReadBits(n)
	if err != nil {
		return 0, err
	}
	return uint32(1<<uint(n) + rest - 1), nil
}

// ReadSE reads a signed Exp-Golomb code.
func (r *BitReader) ReadSE() (int32, error) {
	u, err := r.ReadUE()
	if err != nil {
		return 0, err
	}
	return ueToSE(u), nil
}

func seToUE(v int32) uint32 {
	if v > 0 {
		return uint32(2*v - 1)
	}
	return uint32(-2 * v)
}

func ueToSE(u uint32) int32 {
	if u%2 == 1 {
		return int32(u+1) / 2
	}
	return -int32(u) / 2
}

func bitLen64(x uint64) int { return bits.Len64(x) }
