package codec

import (
	"math"
	"math/rand"
	"testing"
)

func TestDCTRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var src, freq, back [blockSize * blockSize]float64
	for i := range src {
		src[i] = float64(rng.Intn(256))
	}
	refFdct8(&src, &freq)
	refIdct8(&freq, &back)
	for i := range src {
		if math.Abs(src[i]-back[i]) > 1e-9 {
			t.Fatalf("DCT round trip error at %d: %v vs %v", i, src[i], back[i])
		}
	}
}

func TestDCTEnergyCompaction(t *testing.T) {
	// A constant block has all energy in DC.
	var src, freq [blockSize * blockSize]float64
	for i := range src {
		src[i] = 100
	}
	refFdct8(&src, &freq)
	if math.Abs(freq[0]-800) > 1e-9 { // 100·8 for orthonormal 2-D DCT
		t.Errorf("DC = %v, want 800", freq[0])
	}
	for i := 1; i < len(freq); i++ {
		if math.Abs(freq[i]) > 1e-9 {
			t.Fatalf("AC[%d] = %v, want 0", i, freq[i])
		}
	}
}

func TestDCTParseval(t *testing.T) {
	// Orthonormal transform preserves energy.
	rng := rand.New(rand.NewSource(2))
	var src, freq [blockSize * blockSize]float64
	for i := range src {
		src[i] = rng.Float64()*255 - 128
	}
	refFdct8(&src, &freq)
	var es, ef float64
	for i := range src {
		es += src[i] * src[i]
		ef += freq[i] * freq[i]
	}
	if math.Abs(es-ef) > 1e-6*es {
		t.Errorf("energy %v vs %v", es, ef)
	}
}

func TestQStep(t *testing.T) {
	if QStep(0) != 0.625 {
		t.Errorf("QStep(0) = %v", QStep(0))
	}
	// Doubles every 6 QP.
	if math.Abs(QStep(12)/QStep(6)-2) > 1e-12 {
		t.Error("QStep should double every 6 QP")
	}
	// Clamped outside [0, 51].
	if QStep(-5) != QStep(0) || QStep(99) != QStep(51) {
		t.Error("QStep clamp failed")
	}
	// Monotone.
	for qp := 1; qp <= 51; qp++ {
		if QStep(qp) <= QStep(qp-1) {
			t.Fatalf("QStep not monotone at %d", qp)
		}
	}
}

func TestQuantizeRoundTrip(t *testing.T) {
	var dct, back [blockSize * blockSize]float64
	var levels [blockSize * blockSize]int32
	dct[0] = 800
	dct[1] = -37.3
	dct[9] = 12.1
	qstep := QStep(20)
	refQuantizeBlock(&dct, qstep, &levels)
	refDequantizeBlock(&levels, qstep, &back)
	for i := range dct {
		if math.Abs(dct[i]-back[i]) > qstep/2+1e-9 {
			t.Errorf("coeff %d: error %v exceeds qstep/2", i, math.Abs(dct[i]-back[i]))
		}
	}
	// Higher QP quantizes more coefficients to zero.
	var levLow, levHigh [blockSize * blockSize]int32
	refQuantizeBlock(&dct, QStep(4), &levLow)
	refQuantizeBlock(&dct, QStep(40), &levHigh)
	nz := func(l *[blockSize * blockSize]int32) int {
		n := 0
		for _, v := range l {
			if v != 0 {
				n++
			}
		}
		return n
	}
	if nz(&levHigh) > nz(&levLow) {
		t.Error("higher QP should not keep more coefficients")
	}
}
