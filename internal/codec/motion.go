package codec

import (
	"math"

	"dive/internal/imgx"
)

// MBSize is the macroblock edge in pixels.
const MBSize = 16

// MV is a full-pel motion vector: the displacement from a macroblock in the
// current frame to its best match in the reference frame.
type MV struct {
	X, Y int16
}

// IsZero reports whether the vector is (0, 0).
func (v MV) IsZero() bool { return v.X == 0 && v.Y == 0 }

// MEMethod selects the motion-estimation search strategy, mirroring x264's
// --me options; Figure 9 sweeps these.
type MEMethod int

// Motion estimation methods, in ascending computational complexity.
const (
	MEDia  MEMethod = iota + 1 // diamond search
	MEHex                      // hexagon search
	MEUmh                      // uneven multi-hexagon search
	METesa                     // transformed exhaustive (SATD refinement)
	MEEsa                      // exhaustive search
)

// String returns the x264-style lowercase name.
func (m MEMethod) String() string {
	switch m {
	case MEDia:
		return "dia"
	case MEHex:
		return "hex"
	case MEUmh:
		return "umh"
	case METesa:
		return "tesa"
	case MEEsa:
		return "esa"
	default:
		return "unknown"
	}
}

// ParseMEMethod converts an x264-style name into an MEMethod.
func ParseMEMethod(s string) (MEMethod, bool) {
	switch s {
	case "dia":
		return MEDia, true
	case "hex":
		return MEHex, true
	case "umh":
		return MEUmh, true
	case "tesa":
		return METesa, true
	case "esa":
		return MEEsa, true
	}
	return 0, false
}

// AllMEMethods lists every search strategy for sweeps.
func AllMEMethods() []MEMethod {
	return []MEMethod{MEDia, MEHex, MEUmh, METesa, MEEsa}
}

// searcher bundles the state one motion search needs.
type searcher struct {
	cur, ref  *imgx.Plane
	mbx, mby  int // top-left pixel of the macroblock
	rangePx   int
	bestMV    MV
	bestCost  int
	lambdaMV  int // bit-cost weight for MV magnitude (rate term)
	predictor MV
}

// cost evaluates candidate (dx, dy): SAD plus a small rate term that
// penalizes deviation from the predictor, the standard regularization that
// keeps MV fields smooth in production encoders. The search window is
// centered on the predictor (as in x264), so coherent large motion can be
// tracked through predictor chaining even beyond the window radius.
func (s *searcher) cost(dx, dy int) int {
	if absInt(dx-int(s.predictor.X)) > s.rangePx || absInt(dy-int(s.predictor.Y)) > s.rangePx {
		return math.MaxInt32
	}
	sad := imgx.SAD(s.cur, s.mbx, s.mby, s.ref, s.mbx+dx, s.mby+dy, MBSize, MBSize, s.bestCost)
	rate := s.lambdaMV * (absInt(dx-int(s.predictor.X)) + absInt(dy-int(s.predictor.Y)))
	return sad + rate
}

// try updates the incumbent if candidate (dx, dy) is cheaper.
func (s *searcher) try(dx, dy int) {
	c := s.cost(dx, dy)
	if c < s.bestCost {
		s.bestCost = c
		s.bestMV = MV{int16(dx), int16(dy)}
	}
}

func absInt(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// smallDiamond is the ±1 cross used by DIA and as final refinement.
var smallDiamond = [4][2]int{{0, -1}, {0, 1}, {-1, 0}, {1, 0}}

// hexPattern is the 6-point hexagon of radius 2.
var hexPattern = [6][2]int{{-2, 0}, {-1, -2}, {1, -2}, {2, 0}, {1, 2}, {-1, 2}}

// searchDia runs an iterative small-diamond descent from the predictor.
func (s *searcher) searchDia() {
	cx, cy := int(s.bestMV.X), int(s.bestMV.Y)
	for iter := 0; iter < 2*s.rangePx; iter++ {
		improved := false
		for _, d := range smallDiamond {
			before := s.bestCost
			s.try(cx+d[0], cy+d[1])
			if s.bestCost < before {
				improved = true
			}
		}
		nx, ny := int(s.bestMV.X), int(s.bestMV.Y)
		if !improved || (nx == cx && ny == cy) {
			return
		}
		cx, cy = nx, ny
	}
}

// searchHex runs hexagon descent followed by small-diamond refinement.
func (s *searcher) searchHex() {
	cx, cy := int(s.bestMV.X), int(s.bestMV.Y)
	for iter := 0; iter < s.rangePx; iter++ {
		for _, d := range hexPattern {
			s.try(cx+d[0], cy+d[1])
		}
		nx, ny := int(s.bestMV.X), int(s.bestMV.Y)
		if nx == cx && ny == cy {
			break
		}
		cx, cy = nx, ny
	}
	cx, cy = int(s.bestMV.X), int(s.bestMV.Y)
	for _, d := range smallDiamond {
		s.try(cx+d[0], cy+d[1])
	}
}

// searchUmh runs a simplified uneven multi-hexagon search: an uneven cross,
// expanding multi-hexagon rings, then hexagon refinement.
func (s *searcher) searchUmh() {
	cx, cy := int(s.bestMV.X), int(s.bestMV.Y)
	// Uneven cross: horizontal reach is twice the vertical (motion in
	// driving video is predominantly horizontal).
	for d := 1; d <= s.rangePx; d += 2 {
		s.try(cx+d, cy)
		s.try(cx-d, cy)
		if d <= s.rangePx/2 {
			s.try(cx, cy+d)
			s.try(cx, cy-d)
		}
	}
	// Multi-hexagon rings around the incumbent.
	cx, cy = int(s.bestMV.X), int(s.bestMV.Y)
	for r := 1; r <= s.rangePx/2; r *= 2 {
		for _, d := range hexPattern {
			s.try(cx+d[0]*r, cy+d[1]*r)
		}
	}
	s.searchHex()
}

// searchEsa scans every offset in the predictor-centered window; the
// window-global SAD-optimal match.
func (s *searcher) searchEsa() {
	px, py := int(s.predictor.X), int(s.predictor.Y)
	for dy := py - s.rangePx; dy <= py+s.rangePx; dy++ {
		for dx := px - s.rangePx; dx <= px+s.rangePx; dx++ {
			s.try(dx, dy)
		}
	}
}

// searchTesa scans exhaustively with SAD, keeps the best candidates, and
// re-ranks them with a Hadamard-transformed (SATD) cost, as x264's tesa
// does. It is the most expensive method.
func (s *searcher) searchTesa() {
	type cand struct {
		dx, dy, sad int
	}
	const keep = 12
	cands := make([]cand, 0, keep+1)
	worst := math.MaxInt32
	px, py := int(s.predictor.X), int(s.predictor.Y)
	for dy := py - s.rangePx; dy <= py+s.rangePx; dy++ {
		for dx := px - s.rangePx; dx <= px+s.rangePx; dx++ {
			sad := imgx.SAD(s.cur, s.mbx, s.mby, s.ref, s.mbx+dx, s.mby+dy, MBSize, MBSize, worst)
			if len(cands) < keep || sad < worst {
				cands = append(cands, cand{dx, dy, sad})
				// Keep the candidate list small and worst up to date.
				if len(cands) > keep {
					wi, wv := 0, -1
					for i, c := range cands {
						if c.sad > wv {
							wi, wv = i, c.sad
						}
					}
					cands[wi] = cands[len(cands)-1]
					cands = cands[:len(cands)-1]
				}
				worst = 0
				for _, c := range cands {
					if c.sad > worst {
						worst = c.sad
					}
				}
			}
		}
	}
	bestCost := math.MaxInt32
	for _, c := range cands {
		satd := s.satd(c.dx, c.dy)
		cost := satd + s.lambdaMV*(absInt(c.dx-int(s.predictor.X))+absInt(c.dy-int(s.predictor.Y)))
		if cost < bestCost {
			bestCost = cost
			s.bestMV = MV{int16(c.dx), int16(c.dy)}
		}
	}
	s.bestCost = bestCost
}

// satd computes the sum of absolute Hadamard-transformed differences over
// the macroblock's four 8×8 blocks at offset (dx, dy).
func (s *searcher) satd(dx, dy int) int {
	total := 0
	var diff [blockSize * blockSize]int32
	for by := 0; by < MBSize; by += blockSize {
		for bx := 0; bx < MBSize; bx += blockSize {
			for y := 0; y < blockSize; y++ {
				for x := 0; x < blockSize; x++ {
					cx, cy := s.mbx+bx+x, s.mby+by+y
					diff[y*blockSize+x] = int32(s.cur.At(cx, cy)) - int32(s.ref.At(cx+dx, cy+dy))
				}
			}
			total += hadamardSAT(&diff)
		}
	}
	return total
}

// hadamardSAT applies the 8×8 Hadamard transform and sums magnitudes.
func hadamardSAT(d *[blockSize * blockSize]int32) int {
	// Rows then columns of the recursive butterfly.
	for y := 0; y < blockSize; y++ {
		hadamard8(d[y*blockSize : y*blockSize+blockSize])
	}
	var col [blockSize]int32
	sum := 0
	for x := 0; x < blockSize; x++ {
		for y := 0; y < blockSize; y++ {
			col[y] = d[y*blockSize+x]
		}
		hadamard8(col[:])
		for _, v := range col {
			if v < 0 {
				v = -v
			}
			sum += int(v)
		}
	}
	return sum / 8
}

// hadamard8 performs an in-place 8-point Hadamard transform.
func hadamard8(v []int32) {
	for step := 1; step < 8; step *= 2 {
		for i := 0; i < 8; i += 2 * step {
			for j := i; j < i+step; j++ {
				a, b := v[j], v[j+step]
				v[j], v[j+step] = a+b, a-b
			}
		}
	}
}

// SearchMB finds the motion vector for the macroblock whose top-left pixel
// is (mbx, mby), starting from predictor pred.
func SearchMB(cur, ref *imgx.Plane, mbx, mby int, pred MV, method MEMethod, rangePx int) (MV, int) {
	s := &searcher{
		cur: cur, ref: ref, mbx: mbx, mby: mby,
		rangePx: rangePx, bestCost: math.MaxInt32,
		lambdaMV: 4, predictor: pred,
	}
	switch method {
	case MEEsa, METesa:
		// Exhaustive variants are purely residual-driven: they visit the
		// whole window, so the predictor only positions the window and
		// contributes no rate bias. This is what makes them best for
		// compression yet noisier for analytics — the window-global
		// residual minimum need not be the true object motion.
		s.lambdaMV = 0
		s.bestMV = MV{}
		s.bestCost = s.cost(0, 0)
		if method == MEEsa {
			s.searchEsa()
		} else {
			s.searchTesa()
		}
	default:
		// Start from the predictor and the zero vector.
		s.bestMV = MV{}
		s.bestCost = s.cost(0, 0)
		s.try(int(pred.X), int(pred.Y))
		// Noise-adaptive rate penalty: when even the best starting
		// candidate has high SAD (noisy or flat content), random offsets
		// can beat it by chance alone, so demand proportionally more
		// improvement per pixel of displacement. This is what keeps
		// x264's vectors at zero on low-light footage — the effect the
		// paper leans on when excluding night clips.
		if adaptive := s.bestCost >> 5; adaptive > s.lambdaMV {
			s.lambdaMV = adaptive
		}
		switch method {
		case MEDia:
			s.searchDia()
		case MEUmh:
			s.searchUmh()
		default:
			s.searchHex()
		}
	}
	return s.bestMV, s.bestCost
}
