package codec

import (
	"fmt"

	"dive/internal/imgx"
	"dive/internal/obs"
)

// Two-phase encoding. Encode is split into AnalyzeAndQuantize (motion
// analysis, rate control, transform, quantization and reconstruction — the
// part the next frame depends on) and EmitBitstream (entropy serialization —
// the part nothing downstream of the encoder state depends on). The split is
// what makes frame-level pipelining possible: reconstruction is a function of
// the quantized coefficients only, never of the written bits, so the encoder
// reference advances at the end of phase one and frame N+1's motion search
// can start while frame N's bits are still being written on another
// goroutine.
//
// Contract: AnalyzeAndQuantize(f, o) followed by EmitBitstream(job) produces
// a byte-identical bitstream, identical reconstruction and identical encoder
// state trajectory to the pre-split Encode(f, o). NumBits is computed
// arithmetically in phase one (exact, verified against the writer in
// EmitBitstream), so rate-dependent consumers (the link simulator, rate
// estimators) can run before the bytes exist.

// FrameJob is one frame's encode carried between AnalyzeAndQuantize and
// EmitBitstream: the quantized coefficient grid, coded modes/vectors and the
// already-installed reconstruction. Job backing storage is recycled through
// the encoder's free list once EmitBitstream consumes it.
//
// EmitBitstream only reads immutable encoder config, so it may run
// concurrently with the encoder's next AnalyzeAndQuantize calls.
type FrameJob struct {
	// Frame is the encoded frame under construction: every field except
	// Data is final when AnalyzeAndQuantize returns; EmitBitstream fills
	// Data and hands the frame out.
	Frame *EncodedFrame

	enc   *Encoder
	recon *imgx.Plane
	// modes/mvs are the coded per-MB decisions (mvs is the codedMVs array
	// the emit-side MV predictor replays). intraModes holds 4 per-block
	// directional modes per MB (I-frames only). levels is the full
	// quantized-coefficient grid, 4 blocks of 64 levels per MB; slots of
	// skip MBs are stale garbage and never read, exactly like the
	// recycled inter-DCT cache.
	modes      []MBMode
	mvs        []MV
	intraModes []uint8
	levels     []int32
	// nz holds each transform block's nonzero-level count, recorded by the
	// quantizers so EmitBitstream's writeCoeffs skips its emptiness
	// pre-scan and stops the zigzag walk at the last coefficient.
	nz []uint8
	// qps is the per-MB QP array the job's frame hands out. It lives in the
	// job — not the encoder — because EmitBitstream reads it on the
	// pipeline's emit goroutine while the encoder is quantizing later
	// frames; the job free list's channel is the happens-before edge that
	// makes the recycling safe. The encoder keeps its own copy (refQPs) for
	// next-frame skip thresholds.
	qps []int
	// frame and bw are the hand-out storage recycled in ReuseFrames mode:
	// the EncodedFrame the caller receives and the bitstream writer whose
	// backing buffer becomes Data. bw reaches a grow-once steady state via
	// Reset. Without ReuseFrames, EmitBitstream copies out of them instead.
	frame EncodedFrame
	bw    BitWriter
}

// block returns the levels of transform block blk (0..3) of macroblock i.
func (j *FrameJob) block(i, blk int) *[blockSize * blockSize]int32 {
	off := (i*4 + blk) * blockSize * blockSize
	return (*[blockSize * blockSize]int32)(j.levels[off : off+blockSize*blockSize])
}

// jobFreeCap bounds the encoder's job free list; a pipeline keeps at most a
// few frames in flight, and overflow jobs are simply garbage-collected.
const jobFreeCap = 4

// getJob returns a recycled or freshly allocated job. The channel free list
// gives the release (EmitBitstream, possibly on another goroutine) a
// happens-before edge to the next acquisition here.
func (e *Encoder) getJob() *FrameJob {
	select {
	case j := <-e.jobFree:
		return j
	default:
	}
	n := e.mbw * e.mbh
	return &FrameJob{
		enc:        e,
		modes:      make([]MBMode, n),
		mvs:        make([]MV, n),
		intraModes: make([]uint8, n*4),
		levels:     make([]int32, n*4*blockSize*blockSize),
		nz:         make([]uint8, n*4),
		qps:        make([]int, n),
	}
}

// putJob releases a consumed job's backing storage to the free list.
// Transferred fields (Frame, recon — now the encoder reference) are cleared;
// mvs needs no zeroing because the emit-side predictor only reads cells the
// same frame wrote earlier in raster order.
func (e *Encoder) putJob(j *FrameJob) {
	j.Frame = nil
	j.recon = nil
	select {
	case e.jobFree <- j:
	default:
	}
}

// AnalyzeAndQuantize runs phase one of the two-phase encode: frame-type
// decision, motion analysis, rate control, transform, quantization and
// reconstruction. On return the encoder's reference state has advanced — the
// next frame may be analyzed immediately — and the returned job carries
// everything EmitBitstream needs to serialize the bitstream later, on any
// goroutine. Jobs must be emitted in the order they were produced (the
// bitstream is stateless but consumers expect frame order) and exactly once.
func (e *Encoder) AnalyzeAndQuantize(frame *imgx.Plane, opts EncodeOptions) (*FrameJob, error) {
	if frame.W != e.cfg.Width || frame.H != e.cfg.Height {
		return nil, fmt.Errorf("codec: frame size %dx%d does not match config %dx%d", frame.W, frame.H, e.cfg.Width, e.cfg.Height)
	}
	if opts.QPOffsets != nil && len(opts.QPOffsets) != e.mbw*e.mbh {
		return nil, fmt.Errorf("codec: QP offset map has %d entries, want %d", len(opts.QPOffsets), e.mbw*e.mbh)
	}
	ftype := PFrame
	if e.ref == nil || opts.ForceIFrame || (e.cfg.GoPSize <= 1) || (e.frameIdx%e.cfg.GoPSize == 0) {
		ftype = IFrame
	}
	var mf *MotionField
	if e.ref != nil {
		// Analytics want MVs on I-frames too; compute but do not predict
		// from them.
		mf = e.AnalyzeMotion(frame)
	}

	baseQP := clampQP(opts.BaseQP)
	minQP := clampQP(opts.MinQP)
	if baseQP < minQP {
		baseQP = minQP
	}
	if ftype == IFrame && opts.IFrameBudgetScale > 1 && opts.TargetBits > 0 {
		opts.TargetBits = int(float64(opts.TargetBits) * opts.IFrameBudgetScale)
	}
	var dctCache interCache
	if ftype == PFrame {
		dctTimer := e.cfg.Obs.StartStage(obs.StageCodecDCT)
		dctCache = e.buildInterDCTCache(frame, mf)
		dctTimer.Stop()
	}

	entropyTimer := e.cfg.Obs.StartStage(obs.StageCodecEntropy)
	var rcTrace []obs.QPTrial
	if opts.TargetBits > 0 {
		// Bisect the base QP over cheap trial passes exactly as before the
		// split (see Encode's original rate-control comment): trials are
		// entropy-only and the speculative prefetcher seeds the memo.
		memo, trials := e.prefetchRCProbes(frame, ftype, mf, dctCache, opts.QPOffsets)
		// MinQP floors the bisection: degradation ladders use it to keep a
		// struggling link from being handed finely-quantized frames it
		// cannot carry.
		lo, hi := minQP, 51
		for lo < hi {
			mid := (lo + hi) / 2
			bits := memo[mid]
			speculative := bits >= 0
			if bits < 0 {
				bits = e.countPass(frame, ftype, mf, dctCache, mid, opts.QPOffsets)
				trials++
			}
			if e.cfg.Obs != nil {
				rcTrace = append(rcTrace, obs.QPTrial{QP: mid, Bits: bits, Speculative: speculative})
			}
			if bits <= opts.TargetBits {
				hi = mid
			} else {
				lo = mid + 1
			}
		}
		e.cfg.Obs.Counter(obs.MetricRCTrials).Add(int64(trials))
		baseQP = lo
	}
	job := e.getJob()
	job.enc = e
	nbits := e.quantizePass(frame, ftype, mf, dctCache, baseQP, opts.QPOffsets, job)
	entropyTimer.Stop()

	// Advance the reference with a one-frame release lag: the retired plane
	// parks in prevRef through the next analyze (Reconstructed contract)
	// before recycling into the plane pool.
	old := e.ref
	e.ref = job.recon
	e.recons.Put(e.prevRef)
	e.prevRef = old
	// refQPs is a copy, not an alias: job.qps storage is read by the emit
	// goroutine and recycled with the job, while refQPs feeds the next
	// frame's skip thresholds on the analyze goroutine.
	if e.refQPs == nil {
		e.refQPs = make([]int, e.mbw*e.mbh)
	}
	copy(e.refQPs, job.qps)
	e.analyzed, e.motion = nil, nil
	idx := e.frameIdx
	e.frameIdx++

	// Hand-out storage: recycled through the job in ReuseFrames mode,
	// freshly copied otherwise (so callers may retain frames indefinitely).
	qps := job.qps
	if e.cfg.ReuseFrames {
		job.Frame = &job.frame
	} else {
		job.Frame = &EncodedFrame{}
		qps = append([]int(nil), job.qps...)
	}
	*job.Frame = EncodedFrame{
		Type: ftype, Index: idx, BaseQP: baseQP,
		MBW: e.mbw, MBH: e.mbh,
		Motion: mf, QPs: qps,
		NumBits:  nbits,
		RCTrials: rcTrace,
	}
	return job, nil
}

// quantizePass is the phase-one counterpart of encodePass(final=true): it
// makes the identical mode decisions and produces the identical
// reconstruction and per-MB QPs, but records quantized levels (and intra
// modes) into the job instead of entropy-coding them, counting the exact
// bits each write would produce. It fills job.qps and returns the total bit
// count, which EmitBitstream later verifies against the real writer. The
// recon plane comes recycled from the plane pool: every pixel is written in
// raster order before any read (skip/inter compensation and causal intra
// prediction both are), so stale content is never observed.
func (e *Encoder) quantizePass(frame *imgx.Plane, ftype FrameType, mf *MotionField, dctCache interCache, baseQP int, offsets []int, job *FrameJob) int {
	recon := e.recons.Get()
	job.recon = recon
	qps := job.qps

	bits := ueBits(uint32(ftype)) + ueBits(uint32(baseQP)) +
		ueBits(uint32(e.mbw)) + ueBits(uint32(e.mbh)) + 2 // subpel + deblock flags

	codedMVs := job.mvs
	for by := 0; by < e.mbh; by++ {
		for bx := 0; bx < e.mbw; bx++ {
			i := by*e.mbw + bx
			qp := baseQP
			if offsets != nil {
				qp = clampQP(baseQP + offsets[i])
			}
			qps[i] = qp
			px, py := bx*MBSize, by*MBSize

			if ftype == IFrame {
				job.modes[i] = ModeIntra
				bits += ueBits(uint32(ModeIntra)) + seBits(int32(qp-baseQP))
				mbLevels := job.levels[i*4*blockSize*blockSize : (i+1)*4*blockSize*blockSize]
				if e.cfg.RefTransform {
					bits += refQuantizeIntraMB(frame, recon, px, py, qp,
						mbLevels, job.intraModes[i*4:i*4+4], job.nz[i*4:i*4+4])
				} else {
					bits += quantizeIntraMB(frame, recon, px, py, qp,
						mbLevels, job.intraModes[i*4:i*4+4], job.nz[i*4:i*4+4])
				}
				continue
			}

			mode := mf.Modes[i]
			mv := mf.MVs[i]
			pred := predictMV(codedMVs, e.mbw, bx, by)
			if mode == ModeSkip && mv == pred {
				job.modes[i] = ModeSkip
				bits += ueBits(uint32(ModeSkip))
				codedMVs[i] = pred
				motionCompensate(recon, e.ref, px, py, pred, e.cfg.SubPel)
				continue
			}
			job.modes[i] = ModeInter
			bits += ueBits(uint32(ModeInter)) +
				seBits(int32(mv.X)-int32(pred.X)) +
				seBits(int32(mv.Y)-int32(pred.Y)) +
				seBits(int32(qp-baseQP))
			codedMVs[i] = mv
			mbLevels := job.levels[i*4*blockSize*blockSize : (i+1)*4*blockSize*blockSize]
			if e.cfg.RefTransform {
				bits += refQuantizeInterMB(dctCache.refMB(i), e.ref, recon, px, py, mv, qp, e.cfg.SubPel,
					mbLevels, job.nz[i*4:i*4+4])
			} else {
				bits += quantizeInterMB(dctCache.fixMB(i), e.ref, recon, px, py, mv, qp, e.cfg.SubPel,
					mbLevels, job.nz[i*4:i*4+4])
			}
		}
	}
	if e.cfg.Deblock {
		deblockFrame(recon, qps, e.mbw)
	}
	return bits
}

// quantizeInterMB quantizes one inter macroblock from its cached
// fixed-point DCT blocks into out (4 × 64 levels) and nzOut (4 nonzero
// counts), reconstructs it, and returns the exact bit cost of
// entropy-coding the levels.
func quantizeInterMB(dctBlocks [][blockSize * blockSize]int32, ref, recon *imgx.Plane, px, py int, mv MV, qp int, subpel bool, out []int32, nzOut []uint8) int {
	var dct, res [blockSize * blockSize]int32
	bits := 0
	blk := 0
	for by := 0; by < MBSize; by += blockSize {
		for bx := 0; bx < MBSize; bx += blockSize {
			off := blk * blockSize * blockSize
			levels := (*[blockSize * blockSize]int32)(out[off : off+blockSize*blockSize])
			nz := quantizeBlockFixed(&dctBlocks[blk], qp, levels)
			nzOut[blk] = uint8(nz)
			bits += coeffsBits(levels, nz)
			blk++
			dequantizeBlockFixed(levels, qp, &dct)
			idct8Fixed(&dct, &res)
			for y := 0; y < blockSize; y++ {
				for x := 0; x < blockSize; x++ {
					cx, cy := px+bx+x, py+by+y
					v := refSampleI(ref, cx, cy, mv, subpel) + res[y*blockSize+x]
					recon.Set(cx, cy, clampPixI(v))
				}
			}
		}
	}
	return bits
}

// quantizeIntraMB codes one intra macroblock's prediction, transform and
// quantization into out/modesOut/nzOut, reconstructs it, and returns the
// exact bit cost of the per-block mode symbols and levels.
func quantizeIntraMB(cur, recon *imgx.Plane, px, py int, qp int, out []int32, modesOut, nzOut []uint8) int {
	var pred, res, dct [blockSize * blockSize]int32
	bits := 0
	blk := 0
	for by := 0; by < MBSize; by += blockSize {
		for bx := 0; bx < MBSize; bx += blockSize {
			mode := chooseIntraMode(cur, recon, px+bx, py+by)
			modesOut[blk] = uint8(mode)
			bits += ueBits(uint32(mode))
			intraPredict(recon, px+bx, py+by, mode, &pred)
			for y := 0; y < blockSize; y++ {
				for x := 0; x < blockSize; x++ {
					res[y*blockSize+x] = int32(cur.At(px+bx+x, py+by+y)) - pred[y*blockSize+x]
				}
			}
			fdct8Fixed(&res, &dct)
			off := blk * blockSize * blockSize
			levels := (*[blockSize * blockSize]int32)(out[off : off+blockSize*blockSize])
			nz := quantizeBlockFixed(&dct, qp, levels)
			nzOut[blk] = uint8(nz)
			bits += coeffsBits(levels, nz)
			blk++
			dequantizeBlockFixed(levels, qp, &dct)
			idct8Fixed(&dct, &res)
			for y := 0; y < blockSize; y++ {
				for x := 0; x < blockSize; x++ {
					recon.Set(px+bx+x, py+by+y, clampPixI(pred[y*blockSize+x]+res[y*blockSize+x]))
				}
			}
		}
	}
	return bits
}

// EmitBitstream runs phase two: it serializes the job into the final
// bitstream, verifies the writer agrees with phase one's arithmetic bit
// count, recycles the job and returns the completed frame. It reads only
// job state and immutable encoder config, so it is safe to run concurrently
// with later AnalyzeAndQuantize calls on the same encoder; jobs must be
// emitted in production order, exactly once.
func (e *Encoder) EmitBitstream(job *FrameJob) (*EncodedFrame, error) {
	if job == nil || job.Frame == nil {
		return nil, fmt.Errorf("codec: EmitBitstream on a consumed or nil job")
	}
	if job.enc != e {
		return nil, fmt.Errorf("codec: EmitBitstream on a job from a different encoder")
	}
	emitTimer := e.cfg.Obs.StartStage(obs.StageCodecEmit)
	defer emitTimer.Stop()

	ef := job.Frame
	// The writer (and its grow-once backing buffer) is job-owned: the job
	// free list's channel hand-off orders this goroutine's writes before the
	// next analyze reuses the storage.
	w := &job.bw
	w.Reset()
	w.WriteUE(uint32(ef.Type))
	w.WriteUE(uint32(ef.BaseQP))
	w.WriteUE(uint32(e.mbw))
	w.WriteUE(uint32(e.mbh))
	if e.cfg.SubPel {
		w.WriteBit(1)
	} else {
		w.WriteBit(0)
	}
	if e.cfg.Deblock {
		w.WriteBit(1)
	} else {
		w.WriteBit(0)
	}

	for by := 0; by < e.mbh; by++ {
		for bx := 0; bx < e.mbw; bx++ {
			i := by*e.mbw + bx
			qp := ef.QPs[i]
			switch job.modes[i] {
			case ModeIntra:
				w.WriteUE(uint32(ModeIntra))
				w.WriteSE(int32(qp - ef.BaseQP))
				for blk := 0; blk < 4; blk++ {
					w.WriteUE(uint32(job.intraModes[i*4+blk]))
					writeCoeffs(w, job.block(i, blk), int(job.nz[i*4+blk]))
				}
			case ModeSkip:
				w.WriteUE(uint32(ModeSkip))
			case ModeInter:
				mv := job.mvs[i]
				pred := predictMV(job.mvs, e.mbw, bx, by)
				w.WriteUE(uint32(ModeInter))
				w.WriteSE(int32(mv.X) - int32(pred.X))
				w.WriteSE(int32(mv.Y) - int32(pred.Y))
				w.WriteSE(int32(qp - ef.BaseQP))
				for blk := 0; blk < 4; blk++ {
					writeCoeffs(w, job.block(i, blk), int(job.nz[i*4+blk]))
				}
			}
		}
	}
	if w.Len() != ef.NumBits {
		return nil, fmt.Errorf("codec: emitted %d bits for frame %d, phase one counted %d", w.Len(), ef.Index, ef.NumBits)
	}
	if e.cfg.ReuseFrames {
		ef.Data = w.Bytes() // aliases job.bw's buffer until the job cycles back
	} else {
		ef.Data = append([]byte(nil), w.Bytes()...)
	}
	e.putJob(job)
	return ef, nil
}

// Bit-length arithmetic mirroring the Exp-Golomb writers: ueBits(v) is the
// exact length WriteUE(v) appends, seBits the WriteSE counterpart
// (coeffsBits, the writeCoeffs mirror, lives in dct.go next to the writer).

func ueBits(v uint32) int { return 2*bitLen64(uint64(v)+1) - 1 }

func seBits(v int32) int { return ueBits(seToUE(v)) }
