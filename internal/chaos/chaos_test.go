package chaos

import (
	"bytes"
	"net"
	"testing"
	"time"
)

// pipePair returns two connected TCP conns over loopback (net.Pipe has no
// deadlines-by-default semantics we want to mimic production with).
func pipePair(t *testing.T) (net.Conn, net.Conn) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	type res struct {
		c   net.Conn
		err error
	}
	ch := make(chan res, 1)
	go func() {
		c, err := ln.Accept()
		ch <- res{c, err}
	}()
	client, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	r := <-ch
	if r.err != nil {
		t.Fatal(r.err)
	}
	return client, r.c
}

func TestFaultStreamDeterministicCorruption(t *testing.T) {
	cfg := PlanConfig{Seed: 7, CorruptEvery: 64}
	mutate := func() []int {
		fs := newFaultStream(cfg)
		data := make([]byte, 1024)
		out := fs.apply(append([]byte(nil), data...))
		var idx []int
		for i, b := range out.chunk {
			if b != 0 {
				idx = append(idx, i)
			}
		}
		return idx
	}
	a, b := mutate(), mutate()
	if len(a) == 0 {
		t.Fatal("no corruption injected over 1 KiB with CorruptEvery=64")
	}
	if len(a) != len(b) {
		t.Fatalf("corruption count differs across runs: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("corruption offsets differ: %v vs %v", a, b)
		}
	}
}

func TestFaultStreamDisconnectTruncates(t *testing.T) {
	fs := newFaultStream(PlanConfig{Seed: 1, DisconnectAfter: 100})
	out := fs.apply(make([]byte, 64))
	if out.severed || len(out.chunk) != 64 {
		t.Fatalf("first chunk: severed=%v len=%d", out.severed, len(out.chunk))
	}
	out = fs.apply(make([]byte, 64))
	if !out.severed || len(out.chunk) != 36 {
		t.Fatalf("second chunk: severed=%v len=%d, want severed with 36-byte prefix", out.severed, len(out.chunk))
	}
	// Once severed, everything is swallowed.
	out = fs.apply(make([]byte, 10))
	if !out.severed || len(out.chunk) != 0 {
		t.Fatalf("post-sever chunk passed through: %v %d", out.severed, len(out.chunk))
	}
}

func TestConnCorruptionAndDisconnect(t *testing.T) {
	client, server := pipePair(t)
	defer server.Close()
	wrapped := WrapConn(client, PlanConfig{Seed: 3, DisconnectAfter: 200}, PlanConfig{})
	wrapped.CorruptUplinkAt(10)

	payload := make([]byte, 150)
	for i := range payload {
		payload[i] = 0xAA
	}
	if _, err := wrapped.Write(payload); err != nil {
		t.Fatalf("first write: %v", err)
	}
	got := make([]byte, 150)
	if _, err := readFull(server, got); err != nil {
		t.Fatal(err)
	}
	if got[10] == 0xAA {
		t.Error("scripted corruption at offset 10 did not fire")
	}
	diff := 0
	for i := range got {
		if got[i] != 0xAA {
			diff++
		}
	}
	if diff != 1 {
		t.Errorf("expected exactly 1 corrupted byte, got %d", diff)
	}

	// Next write crosses DisconnectAfter=200: 50-byte prefix, then sever.
	_, err := wrapped.Write(payload)
	if err != ErrInjectedDisconnect {
		t.Fatalf("expected injected disconnect, got %v", err)
	}
	prefix := make([]byte, 50)
	if _, err := readFull(server, prefix); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(prefix, payload[:50]) {
		t.Error("prefix before disconnect was not delivered intact")
	}
}

func TestConnThrottlePaces(t *testing.T) {
	client, server := pipePair(t)
	defer server.Close()
	// 80 kbit/s: 1000 bytes = 100 ms serialized.
	wrapped := WrapConn(client, PlanConfig{Seed: 1, ThrottleBps: 80_000}, PlanConfig{})
	go func() {
		buf := make([]byte, 4096)
		for {
			if _, err := server.Read(buf); err != nil {
				return
			}
		}
	}()
	start := time.Now()
	if _, err := wrapped.Write(make([]byte, 1000)); err != nil {
		t.Fatal(err)
	}
	if el := time.Since(start); el < 80*time.Millisecond {
		t.Errorf("throttled 1000-byte write took %v, want >= ~100ms", el)
	}
}

func readFull(c net.Conn, buf []byte) (int, error) {
	c.SetReadDeadline(time.Now().Add(5 * time.Second))
	total := 0
	for total < len(buf) {
		n, err := c.Read(buf[total:])
		total += n
		if err != nil {
			return total, err
		}
	}
	return total, nil
}
