package chaos

import (
	"math/rand"
	"sort"
	"sync"
	"time"
)

// Cluster chaos: seeded whole-member fault schedules. Where scenario.go
// scripts the link under one session, a ClusterScenario scripts the edge
// side of a whole fleet — a member dying mid-clip, a member dropping off the
// network and coming back — and carries the bound the run is graded against
// (the re-detection gap budget). The scenario only decides *what* happens
// *when*; it drives whatever implements ClusterControl, so the same schedule
// runs against the in-process cluster in tests and CI.

// ClusterControl is the handle a cluster scenario drives. Implemented by
// cluster.Cluster (declared here so chaos stays import-light).
type ClusterControl interface {
	// Kill stops member i abruptly (no drain, no redirect).
	Kill(i int)
	// Partition blacks out member i's network path (on) or restores it.
	Partition(i int, on bool) error
}

// Member fault kinds.
const (
	FaultKill      = "kill"
	FaultPartition = "partition"
)

// MemberFault is one scheduled whole-member fault.
type MemberFault struct {
	// AtSec is when the fault fires, seconds from schedule start.
	AtSec float64
	// Member is the victim index.
	Member int
	// Kind is FaultKill or FaultPartition.
	Kind string
	// HealAtSec, for partitions, is when connectivity returns (0 = never).
	HealAtSec float64
}

// ClusterScenario is a named, seeded member-fault schedule plus its grading
// bound.
type ClusterScenario struct {
	Name   string
	Faults []MemberFault
	// GapBudgetSec bounds the re-detection gap every affected session may
	// see: the time from the last detection served by the failed member to
	// the first detection served by its replacement.
	GapBudgetSec float64
}

// KillMember returns the kill-a-server scenario: one member, chosen by seed,
// dies at frac of the way through a duration-second run and never returns.
func KillMember(seed int64, members int, duration, frac, gapBudgetSec float64) ClusterScenario {
	rng := rand.New(rand.NewSource(seed))
	victim := 0
	if members > 1 {
		victim = rng.Intn(members)
	}
	return ClusterScenario{
		Name: "kill-member",
		Faults: []MemberFault{
			{AtSec: duration * frac, Member: victim, Kind: FaultKill},
		},
		GapBudgetSec: gapBudgetSec,
	}
}

// PartitionMember returns the partition scenario: one member, chosen by
// seed, drops off the network at frac of the run and heals healFrac in — the
// fault Kill cannot model, because the server process stays healthy and only
// the path dies.
func PartitionMember(seed int64, members int, duration, frac, healFrac, gapBudgetSec float64) ClusterScenario {
	rng := rand.New(rand.NewSource(seed))
	victim := 0
	if members > 1 {
		victim = rng.Intn(members)
	}
	return ClusterScenario{
		Name: "partition-member",
		Faults: []MemberFault{
			{AtSec: duration * frac, Member: victim, Kind: FaultPartition, HealAtSec: duration * healFrac},
		},
		GapBudgetSec: gapBudgetSec,
	}
}

// Apply schedules the scenario's faults against ctl on the wall clock,
// measured from the moment of the call. The returned stop function cancels
// pending faults and waits for in-flight ones; faults already fired are not
// undone (a killed member stays killed).
func (s ClusterScenario) Apply(ctl ClusterControl) (stop func()) {
	type event struct {
		atSec  float64
		member int
		kind   string
		heal   bool
	}
	var events []event
	for _, f := range s.Faults {
		events = append(events, event{atSec: f.AtSec, member: f.Member, kind: f.Kind})
		if f.Kind == FaultPartition && f.HealAtSec > f.AtSec {
			events = append(events, event{atSec: f.HealAtSec, member: f.Member, kind: f.Kind, heal: true})
		}
	}
	sort.SliceStable(events, func(i, j int) bool { return events[i].atSec < events[j].atSec })

	stopc := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		start := time.Now()
		for _, ev := range events {
			wait := time.Duration(ev.atSec*float64(time.Second)) - time.Since(start)
			if wait > 0 {
				select {
				case <-stopc:
					return
				case <-time.After(wait):
				}
			}
			switch ev.kind {
			case FaultKill:
				ctl.Kill(ev.member)
			case FaultPartition:
				ctl.Partition(ev.member, !ev.heal)
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() { close(stopc) })
		wg.Wait()
	}
}
