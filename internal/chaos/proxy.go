package chaos

import (
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// ProxyConfig configures an in-process fault-injecting TCP relay.
type ProxyConfig struct {
	// Uplink faults apply to agent→server bytes, Downlink to server→agent.
	Uplink, Downlink PlanConfig
	// DialTimeout bounds the upstream dial (default 2s).
	DialTimeout time.Duration
}

// Proxy relays TCP connections to a target address through fault-injecting
// streams. Tests place it between a live agent and a live edge server:
// the agent dials Proxy.Addr(), the proxy dials the real server, and every
// byte crosses the configured fault plans. On top of the seeded plans the
// proxy offers scripted controls — CutConnections severs everything active,
// SetBlackout refuses new connections, CorruptNextUplink flips one byte of
// an upcoming uplink chunk — so scenarios can mix scheduled and scripted
// faults deterministically.
type Proxy struct {
	cfg    ProxyConfig
	target string
	ln     net.Listener

	blackout atomic.Bool

	mu     sync.Mutex
	nextID int64
	active map[int64]*proxySession
	closed bool
	// pendingCorrupt is handed to the next accepted session's uplink.
	pendingCorrupt []int

	wg sync.WaitGroup

	// Counters for assertions: sessions accepted, sessions severed by
	// script, bytes relayed per direction.
	Accepted  atomic.Int64
	Severed   atomic.Int64
	UpBytes   atomic.Int64
	DownBytes atomic.Int64
}

type proxySession struct {
	client, server net.Conn
	up, down       *faultStream
}

// NewProxy starts a relay on 127.0.0.1:0 toward target. Close releases it.
func NewProxy(target string, cfg ProxyConfig) (*Proxy, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 2 * time.Second
	}
	p := &Proxy{cfg: cfg, target: target, ln: ln, active: make(map[int64]*proxySession)}
	p.wg.Add(1)
	go p.serve()
	return p, nil
}

// Addr returns the proxy's listen address; point the agent here.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

func (p *Proxy) serve() {
	defer p.wg.Done()
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			return
		}
		if p.blackout.Load() {
			conn.Close()
			continue
		}
		server, err := net.DialTimeout("tcp", p.target, p.cfg.DialTimeout)
		if err != nil {
			conn.Close()
			continue
		}
		p.Accepted.Add(1)
		sess := &proxySession{
			client: conn, server: server,
			up:   newFaultStream(p.cfg.Uplink),
			down: newFaultStream(p.cfg.Downlink),
		}
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			conn.Close()
			server.Close()
			return
		}
		id := p.nextID
		p.nextID++
		p.active[id] = sess
		// Deliver any queued scripted corruptions to this session's uplink.
		for _, at := range p.pendingCorrupt {
			sess.up.corruptAt(at)
		}
		p.pendingCorrupt = nil
		p.mu.Unlock()

		p.wg.Add(2)
		done := func() {
			// Either direction failing tears down the whole session.
			sess.client.Close()
			sess.server.Close()
			p.mu.Lock()
			delete(p.active, id)
			p.mu.Unlock()
			p.wg.Done()
		}
		go func() { defer done(); p.pipe(sess.client, sess.server, sess.up, &p.UpBytes) }()
		go func() { defer done(); p.pipe(sess.server, sess.client, sess.down, &p.DownBytes) }()
	}
}

// pipe copies src→dst through a fault stream.
func (p *Proxy) pipe(src, dst net.Conn, fs *faultStream, count *atomic.Int64) {
	buf := make([]byte, 16*1024)
	for {
		n, err := src.Read(buf)
		if n > 0 {
			res := fs.apply(buf[:n])
			if res.sleep > 0 {
				time.Sleep(res.sleep)
			}
			if len(res.chunk) > 0 {
				if _, werr := dst.Write(res.chunk); werr != nil {
					return
				}
				count.Add(int64(len(res.chunk)))
			}
			if res.severed {
				p.Severed.Add(1)
				return
			}
		}
		if err != nil {
			if err != io.EOF {
				return
			}
			return
		}
	}
}

// CutConnections severs every active session (a hard mid-stream disconnect)
// and returns how many were cut.
func (p *Proxy) CutConnections() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for id, sess := range p.active {
		sess.client.Close()
		sess.server.Close()
		delete(p.active, id)
		n++
	}
	if n > 0 {
		p.Severed.Add(int64(n))
	}
	return n
}

// SetBlackout toggles a full outage: while on, new connections are accepted
// and immediately closed (the agent's dial succeeds but the session dies
// before the handshake), and every active session is severed.
func (p *Proxy) SetBlackout(on bool) {
	p.blackout.Store(on)
	if on {
		p.CutConnections()
	}
}

// CorruptNextUplink queues a one-shot single-byte corruption of the uplink,
// relOffset bytes past the current position of every active session (and of
// the next accepted session if none is active). Exercises the wire CRC and
// the server's NACK→keyframe recovery.
func (p *Proxy) CorruptNextUplink(relOffset int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.active) == 0 {
		p.pendingCorrupt = append(p.pendingCorrupt, relOffset)
		return
	}
	for _, sess := range p.active {
		sess.up.corruptAt(relOffset)
	}
}

// ActiveSessions reports how many sessions are currently relaying.
func (p *Proxy) ActiveSessions() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.active)
}

// Close stops the listener and severs all sessions.
func (p *Proxy) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	p.mu.Unlock()
	err := p.ln.Close()
	p.CutConnections()
	p.wg.Wait()
	return err
}
