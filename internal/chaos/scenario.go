package chaos

import (
	"math/rand"

	"dive/internal/netsim"
)

// Scenario is a named adverse-link script for the simulator and the
// experiment harness: a bandwidth trace plus the bound the run is graded
// against.
type Scenario struct {
	Name  string
	Trace netsim.Trace
	// RecoverWithinSec is the grading bound: after the last injected fault
	// window ends, uploads must resume within this many simulated seconds.
	RecoverWithinSec float64
	// FaultWindows are the [start, end) intervals (seconds) during which
	// the link is deliberately broken; graders use them to separate
	// injected outages from emergent ones.
	FaultWindows [][2]float64
}

// WindowedOutageTrace forces bandwidth to zero inside explicit windows —
// the aperiodic counterpart of netsim.OutageTrace, for scripted bursts.
type WindowedOutageTrace struct {
	Inner   netsim.Trace
	Windows [][2]float64 // [start, end) seconds
}

// BandwidthAt implements netsim.Trace.
func (w *WindowedOutageTrace) BandwidthAt(t float64) float64 {
	for _, win := range w.Windows {
		if t >= win[0] && t < win[1] {
			return 0
		}
	}
	return w.Inner.BandwidthAt(t)
}

// InOutage reports whether t falls inside a scripted window.
func (w *WindowedOutageTrace) InOutage(t float64) bool {
	for _, win := range w.Windows {
		if t >= win[0] && t < win[1] {
			return true
		}
	}
	return false
}

// OutageBurst scripts n dead-air windows of dur seconds over a base trace,
// spaced pseudo-randomly (seeded) across [start, horizon).
func OutageBurst(base netsim.Trace, seed int64, n int, start, horizon, dur float64) *WindowedOutageTrace {
	rng := rand.New(rand.NewSource(seed))
	span := horizon - start
	if span <= 0 || n <= 0 {
		return &WindowedOutageTrace{Inner: base}
	}
	windows := make([][2]float64, 0, n)
	slot := span / float64(n)
	jitterSpan := slot - dur
	if jitterSpan < 0 {
		jitterSpan = 0
	}
	for i := 0; i < n; i++ {
		at := start + float64(i)*slot + rng.Float64()*jitterSpan
		windows = append(windows, [2]float64{at, at + dur})
	}
	return &WindowedOutageTrace{Inner: base, Windows: windows}
}

// BandwidthCliff drops the link from base to base*cliffFactor at cliffAt and
// restores it at recoverAt — the hard-handover shape that breaks estimators
// trained on the pre-cliff rate.
func BandwidthCliff(baseBps, cliffFactor, cliffAt, recoverAt float64) *netsim.StepTrace {
	return &netsim.StepTrace{
		Times: []float64{0, cliffAt, recoverAt},
		Rates: []float64{baseBps, baseBps * cliffFactor, baseBps},
	}
}

// EstimatorPoison flutters the link on and off with short seeded dead slots:
// sends that straddle a dead slot serialize over a long interval and report
// a tiny realized bandwidth, poisoning sliding-window estimators. The flutter
// runs from start to end; outside it the base trace is untouched.
func EstimatorPoison(base netsim.Trace, seed int64, start, end, slotSec float64) *WindowedOutageTrace {
	rng := rand.New(rand.NewSource(seed))
	var windows [][2]float64
	for t := start; t < end; t += slotSec * 2 {
		// Each cycle deadens a seeded fraction of its slot.
		d := slotSec * (0.4 + 0.4*rng.Float64())
		windows = append(windows, [2]float64{t, t + d})
	}
	return &WindowedOutageTrace{Inner: base, Windows: windows}
}

// StandardScenarios returns the scripted adverse-link suite, deterministic
// in seed, over a clip of the given duration (seconds).
func StandardScenarios(seed int64, duration float64) []Scenario {
	base := netsim.Mbps(2)
	fading := &netsim.FadingTrace{Base: base, Swing: 0.3, Period: 6, Jitter: 0.15, Seed: seed}
	burst := OutageBurst(fading, seed, 2, duration*0.25, duration*0.85, 0.6)
	poison := EstimatorPoison(netsim.ConstantTrace(base), seed+1, duration*0.3, duration*0.6, 0.25)
	cliffAt, recoverAt := duration*0.35, duration*0.7
	return []Scenario{
		{
			Name:  "outage-burst",
			Trace: burst, RecoverWithinSec: 1.0,
			FaultWindows: burst.Windows,
		},
		{
			Name:  "bandwidth-cliff",
			Trace: BandwidthCliff(base, 0.15, cliffAt, recoverAt), RecoverWithinSec: 1.5,
			FaultWindows: [][2]float64{{cliffAt, recoverAt}},
		},
		{
			Name:  "estimator-poison",
			Trace: poison, RecoverWithinSec: 1.0,
			FaultWindows: poison.Windows,
		},
	}
}
