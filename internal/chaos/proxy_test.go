package chaos

import (
	"net"
	"testing"
	"time"
)

// echoServer accepts connections and echoes bytes back until closed.
func echoServer(t *testing.T) (addr string, closeFn func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				buf := make([]byte, 4096)
				for {
					n, err := c.Read(buf)
					if n > 0 {
						if _, werr := c.Write(buf[:n]); werr != nil {
							return
						}
					}
					if err != nil {
						return
					}
				}
			}(c)
		}
	}()
	return ln.Addr().String(), func() { ln.Close() }
}

func TestProxyRelaysCleanly(t *testing.T) {
	addr, stop := echoServer(t)
	defer stop()
	p, err := NewProxy(addr, ProxyConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	conn, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	msg := []byte("hello through the proxy")
	if _, err := conn.Write(msg); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(msg))
	if _, err := readFull(conn, got); err != nil {
		t.Fatal(err)
	}
	if string(got) != string(msg) {
		t.Fatalf("echo mismatch: %q", got)
	}
	if p.Accepted.Load() != 1 {
		t.Errorf("accepted = %d, want 1", p.Accepted.Load())
	}
}

func TestProxyCutAndBlackout(t *testing.T) {
	addr, stop := echoServer(t)
	defer stop()
	p, err := NewProxy(addr, ProxyConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	conn, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
	one := make([]byte, 1)
	if _, err := readFull(conn, one); err != nil {
		t.Fatal(err)
	}

	if n := p.CutConnections(); n != 1 {
		t.Fatalf("cut %d sessions, want 1", n)
	}
	// The severed session surfaces as EOF/reset on the client.
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := conn.Read(one); err == nil {
		t.Error("read after cut succeeded")
	}

	// Blackout: dials may complete (the listener still accepts) but the
	// session dies immediately, before any byte crosses.
	p.SetBlackout(true)
	c2, err := net.Dial("tcp", p.Addr())
	if err == nil {
		c2.SetReadDeadline(time.Now().Add(2 * time.Second))
		if _, err := c2.Read(one); err == nil {
			t.Error("blackout session relayed bytes")
		}
		c2.Close()
	}
	p.SetBlackout(false)
	c3, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c3.Close()
	if _, err := c3.Write([]byte("y")); err != nil {
		t.Fatal(err)
	}
	if _, err := readFull(c3, one); err != nil {
		t.Fatalf("post-blackout session broken: %v", err)
	}
}

func TestProxyScriptedCorruption(t *testing.T) {
	addr, stop := echoServer(t)
	defer stop()
	p, err := NewProxy(addr, ProxyConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	conn, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Establish the session, then corrupt byte 5 of the upcoming bytes.
	if _, err := conn.Write([]byte("A")); err != nil {
		t.Fatal(err)
	}
	one := make([]byte, 1)
	if _, err := readFull(conn, one); err != nil {
		t.Fatal(err)
	}
	p.CorruptNextUplink(5)
	payload := []byte("0123456789")
	if _, err := conn.Write(payload); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(payload))
	if _, err := readFull(conn, got); err != nil {
		t.Fatal(err)
	}
	diff := 0
	for i := range got {
		if got[i] != payload[i] {
			diff++
			if i != 5 {
				t.Errorf("byte %d corrupted, want only byte 5", i)
			}
		}
	}
	if diff != 1 {
		t.Errorf("%d bytes corrupted, want exactly 1", diff)
	}
}

func TestScenarioTracesDeterministic(t *testing.T) {
	a := StandardScenarios(42, 8)
	b := StandardScenarios(42, 8)
	if len(a) != len(b) || len(a) == 0 {
		t.Fatalf("scenario counts: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Name != b[i].Name {
			t.Fatalf("scenario %d name mismatch", i)
		}
		for _, tm := range []float64{0, 1, 2.5, 3.3, 4.9, 6.2, 7.9} {
			if a[i].Trace.BandwidthAt(tm) != b[i].Trace.BandwidthAt(tm) {
				t.Errorf("%s: trace not deterministic at t=%.1f", a[i].Name, tm)
			}
		}
		if len(a[i].FaultWindows) == 0 {
			t.Errorf("%s: no fault windows", a[i].Name)
		}
		for _, w := range a[i].FaultWindows {
			mid := (w[0] + w[1]) / 2
			if bw := a[i].Trace.BandwidthAt(mid); a[i].Name != "bandwidth-cliff" && bw != 0 {
				t.Errorf("%s: bandwidth %.0f inside fault window [%v,%v)", a[i].Name, bw, w[0], w[1])
			}
		}
	}
}

func TestOutageBurstWindowsOrdered(t *testing.T) {
	b := OutageBurst(nil, 9, 3, 1, 7, 0.5)
	if len(b.Windows) != 3 {
		t.Fatalf("got %d windows", len(b.Windows))
	}
	for i, w := range b.Windows {
		if w[1]-w[0] != 0.5 {
			t.Errorf("window %d duration %v", i, w[1]-w[0])
		}
		if i > 0 && w[0] < b.Windows[i-1][1] {
			t.Errorf("windows overlap: %v", b.Windows)
		}
		if !b.InOutage((w[0] + w[1]) / 2) {
			t.Errorf("InOutage false inside window %d", i)
		}
	}
}
