// Package chaos is the deterministic fault-injection layer: everything the
// real world does to a mobile uplink — byte corruption, stalls, mid-stream
// disconnects, bandwidth throttling, full blackouts — reproduced on a seeded
// schedule so resilience tests are exact and replayable.
//
// It operates at two levels:
//
//   - Transport: Conn wraps a live net.Conn and injects faults into the byte
//     stream at seeded byte offsets; Proxy is an in-process TCP relay that
//     applies per-direction fault plans between a real agent and a real edge
//     server, plus programmatic triggers (CutConnections, SetBlackout,
//     CorruptNext) for scripted scenarios.
//   - Simulation: scenario.go builds netsim.Trace bandwidth shapes — outage
//     bursts, bandwidth cliffs, estimator-poisoning flutter — reusable by the
//     simulator and the experiment harness.
//
// Faults are scheduled against byte offsets, not wall-clock time, wherever
// possible: the same seed corrupts the same byte of the same message no
// matter how fast the machine is.
package chaos

import (
	"errors"
	"math/rand"
	"net"
	"sync"
	"time"
)

// ErrInjectedDisconnect marks a connection severed by the fault plan (as
// opposed to a real transport error).
var ErrInjectedDisconnect = errors.New("chaos: injected disconnect")

// PlanConfig schedules faults for one direction of a byte stream. The zero
// value injects nothing. All schedules are deterministic in Seed.
type PlanConfig struct {
	// Seed drives every randomized choice (offsets, corruption values).
	Seed int64
	// CorruptEvery is the mean gap in bytes between single-byte
	// corruptions (XOR with a non-zero value). 0 disables corruption.
	CorruptEvery int
	// StallEvery is the mean gap in bytes between injected stalls of
	// StallFor. 0 disables stalls.
	StallEvery int
	// StallFor is how long each injected stall lasts.
	StallFor time.Duration
	// DisconnectAfter severs the connection once this many bytes have
	// passed. 0 disables injected disconnects.
	DisconnectAfter int
	// ThrottleBps paces the stream to this many bits per second.
	// 0 leaves the stream unthrottled.
	ThrottleBps int
}

// enabled reports whether the plan injects anything at all.
func (p PlanConfig) enabled() bool {
	return p.CorruptEvery > 0 || p.StallEvery > 0 || p.DisconnectAfter > 0 || p.ThrottleBps > 0
}

// faultStream applies one PlanConfig to a sequence of byte chunks. It is the
// shared engine behind Conn and Proxy: callers pass each chunk through
// apply() before handing it to the underlying writer.
type faultStream struct {
	cfg PlanConfig
	rng *rand.Rand

	mu          sync.Mutex
	offset      int // bytes passed so far
	nextCorrupt int // absolute offset of the next corruption (-1 = none)
	nextStall   int // absolute offset of the next stall (-1 = none)
	// corruptOnce queues programmatic corruptions (absolute offsets)
	// independent of the seeded schedule.
	corruptOnce []int
	severed     bool
}

func newFaultStream(cfg PlanConfig) *faultStream {
	fs := &faultStream{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed)), nextCorrupt: -1, nextStall: -1}
	if cfg.CorruptEvery > 0 {
		fs.nextCorrupt = fs.gap(cfg.CorruptEvery)
	}
	if cfg.StallEvery > 0 && cfg.StallFor > 0 {
		fs.nextStall = fs.gap(cfg.StallEvery)
	}
	return fs
}

// gap draws the next fault offset: uniform in [mean/2, 3*mean/2), so faults
// neither bunch at zero nor drift unboundedly.
func (fs *faultStream) gap(mean int) int {
	lo := mean / 2
	if lo < 1 {
		lo = 1
	}
	return fs.offset + lo + fs.rng.Intn(mean+1)
}

// corruptAt queues a one-shot corruption n bytes from the current offset.
func (fs *faultStream) corruptAt(relOffset int) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.corruptOnce = append(fs.corruptOnce, fs.offset+relOffset)
}

// stallDelay is returned by apply when the caller should sleep before
// forwarding the chunk; keeping the sleep outside the lock keeps apply
// reentrant.
type applyResult struct {
	chunk    []byte // possibly mutated in place
	sleep    time.Duration
	severed  bool // disconnect fired inside this chunk; chunk holds the prefix
	corrupts int
}

// apply advances the stream by chunk, injecting scheduled faults. The chunk
// may be mutated in place (corruption) or truncated (disconnect).
func (fs *faultStream) apply(chunk []byte) applyResult {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	res := applyResult{chunk: chunk}
	if fs.severed {
		res.severed = true
		res.chunk = nil
		return res
	}
	start, end := fs.offset, fs.offset+len(chunk)

	// Throttle: serialized duration of this chunk at the configured rate.
	if fs.cfg.ThrottleBps > 0 {
		res.sleep += time.Duration(float64(len(chunk)*8) / float64(fs.cfg.ThrottleBps) * float64(time.Second))
	}
	// Stall schedule.
	if fs.nextStall >= 0 && fs.nextStall < end {
		res.sleep += fs.cfg.StallFor
		fs.nextStall = fs.gapFrom(end, fs.cfg.StallEvery)
	}
	// Seeded corruption schedule.
	for fs.nextCorrupt >= 0 && fs.nextCorrupt < end {
		if fs.nextCorrupt >= start {
			chunk[fs.nextCorrupt-start] ^= byte(1 + fs.rng.Intn(255))
			res.corrupts++
		}
		fs.nextCorrupt = fs.gapFrom(end, fs.cfg.CorruptEvery)
	}
	// Programmatic one-shot corruptions.
	keep := fs.corruptOnce[:0]
	for _, at := range fs.corruptOnce {
		if at >= start && at < end {
			chunk[at-start] ^= byte(1 + fs.rng.Intn(255))
			res.corrupts++
		} else if at >= end {
			keep = append(keep, at)
		}
	}
	fs.corruptOnce = keep
	// Disconnect schedule: truncate the chunk at the cut point.
	if fs.cfg.DisconnectAfter > 0 && end > fs.cfg.DisconnectAfter {
		cut := fs.cfg.DisconnectAfter - start
		if cut < 0 {
			cut = 0
		}
		res.chunk = chunk[:cut]
		res.severed = true
		fs.severed = true
		fs.offset = fs.cfg.DisconnectAfter
		return res
	}
	fs.offset = end
	return res
}

// active reports whether any fault could fire on the next chunk.
func (fs *faultStream) active() bool {
	if fs.cfg.enabled() {
		return true
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return len(fs.corruptOnce) > 0
}

// gapFrom is gap() anchored at a specific offset.
func (fs *faultStream) gapFrom(from, mean int) int {
	lo := mean / 2
	if lo < 1 {
		lo = 1
	}
	return from + lo + fs.rng.Intn(mean+1)
}

// Conn wraps a net.Conn with fault injection: Write passes through the
// uplink plan, Read through the downlink plan. A severed plan closes the
// underlying connection and surfaces ErrInjectedDisconnect.
type Conn struct {
	net.Conn
	up, down *faultStream
}

// WrapConn applies fault plans to a live connection. Either plan may be the
// zero PlanConfig to leave that direction clean.
func WrapConn(c net.Conn, uplink, downlink PlanConfig) *Conn {
	return &Conn{Conn: c, up: newFaultStream(uplink), down: newFaultStream(downlink)}
}

// Write implements net.Conn with uplink fault injection.
func (c *Conn) Write(b []byte) (int, error) {
	if !c.up.active() {
		return c.Conn.Write(b)
	}
	// Copy so corruption never mutates the caller's buffer.
	buf := append([]byte(nil), b...)
	res := c.up.apply(buf)
	if res.sleep > 0 {
		time.Sleep(res.sleep)
	}
	n := 0
	if len(res.chunk) > 0 {
		var err error
		n, err = c.Conn.Write(res.chunk)
		if err != nil {
			return n, err
		}
	}
	if res.severed {
		c.Conn.Close()
		return n, ErrInjectedDisconnect
	}
	return len(b), nil
}

// Read implements net.Conn with downlink fault injection.
func (c *Conn) Read(b []byte) (int, error) {
	n, err := c.Conn.Read(b)
	if n > 0 && c.down.active() {
		res := c.down.apply(b[:n])
		if res.sleep > 0 {
			time.Sleep(res.sleep)
		}
		if res.severed {
			c.Conn.Close()
			if len(res.chunk) == 0 {
				return 0, ErrInjectedDisconnect
			}
			return len(res.chunk), nil
		}
	}
	return n, err
}

// CorruptUplinkAt queues a one-shot corruption of the uplink byte at the
// given offset from the current write position.
func (c *Conn) CorruptUplinkAt(relOffset int) { c.up.corruptAt(relOffset) }
