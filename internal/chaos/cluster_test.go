package chaos

import (
	"sync"
	"testing"
	"time"
)

// fakeCtl records the faults a scenario fires against it.
type fakeCtl struct {
	mu    sync.Mutex
	kills []int
	parts []string // "<member>:on" / "<member>:off"
}

func (f *fakeCtl) Kill(i int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.kills = append(f.kills, i)
}

func (f *fakeCtl) Partition(i int, on bool) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	ev := "off"
	if on {
		ev = "on"
	}
	f.parts = append(f.parts, string(rune('0'+i))+":"+ev)
	return nil
}

func (f *fakeCtl) snapshot() (kills []int, parts []string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]int(nil), f.kills...), append([]string(nil), f.parts...)
}

func TestKillMemberSeededDeterministic(t *testing.T) {
	a := KillMember(7, 5, 10, 0.5, 2)
	b := KillMember(7, 5, 10, 0.5, 2)
	if len(a.Faults) != 1 || a.Faults[0].Kind != FaultKill {
		t.Fatalf("KillMember = %+v, want one kill fault", a)
	}
	if a.Faults[0].Member != b.Faults[0].Member {
		t.Fatalf("same seed picked victims %d and %d", a.Faults[0].Member, b.Faults[0].Member)
	}
	if v := a.Faults[0].Member; v < 0 || v >= 5 {
		t.Fatalf("victim %d outside the member range", v)
	}
	if a.Faults[0].AtSec != 5 {
		t.Fatalf("kill at %.1fs, want mid-run 5s", a.Faults[0].AtSec)
	}
	if KillMember(8, 5, 10, 0.5, 2).Faults[0].Member == a.Faults[0].Member &&
		KillMember(9, 5, 10, 0.5, 2).Faults[0].Member == a.Faults[0].Member &&
		KillMember(10, 5, 10, 0.5, 2).Faults[0].Member == a.Faults[0].Member {
		t.Error("four different seeds all picked the same victim")
	}
}

func TestApplyFiresDueFaultsAndStopCancelsPending(t *testing.T) {
	ctl := &fakeCtl{}
	s := ClusterScenario{
		Name: "test",
		Faults: []MemberFault{
			{AtSec: 0, Member: 1, Kind: FaultKill},
			{AtSec: 3600, Member: 2, Kind: FaultKill}, // far future; must be cancelled
		},
	}
	stop := s.Apply(ctl)
	deadline := time.Now().Add(5 * time.Second)
	for {
		kills, _ := ctl.snapshot()
		if len(kills) > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("due fault never fired")
		}
		time.Sleep(5 * time.Millisecond)
	}
	stop()
	stop() // idempotent
	kills, _ := ctl.snapshot()
	if len(kills) != 1 || kills[0] != 1 {
		t.Fatalf("kills = %v, want only the due fault on member 1", kills)
	}
}

func TestApplyPartitionHeals(t *testing.T) {
	ctl := &fakeCtl{}
	s := PartitionMember(3, 4, 0.1, 0.1, 0.3, 2)
	if s.Faults[0].HealAtSec <= s.Faults[0].AtSec {
		t.Fatalf("heal %.2fs not after fault %.2fs", s.Faults[0].HealAtSec, s.Faults[0].AtSec)
	}
	stop := s.Apply(ctl)
	defer stop()
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, parts := ctl.snapshot()
		if len(parts) == 2 {
			if parts[0][2:] != "on" || parts[1][2:] != "off" {
				t.Fatalf("partition events %v, want blackout then heal", parts)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("partition/heal never completed: %v", parts)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
