package geom

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)))
}

// Median returns the median of xs, or 0 for an empty slice.
func Median(xs []float64) float64 { return Percentile(xs, 50) }

// Percentile returns the p-th percentile (0..100) of xs using linear
// interpolation between order statistics. Empty input returns 0.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	rank := p / 100 * float64(len(s)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s[lo]
	}
	frac := rank - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// CDFPoint is one (value, cumulative fraction) sample of an empirical CDF.
type CDFPoint struct {
	Value    float64
	Fraction float64
}

// EmpiricalCDF returns the empirical CDF of xs as sorted points; fractions
// are in (0, 1]. This backs the CDF plots in Figures 6 and 7.
func EmpiricalCDF(xs []float64) []CDFPoint {
	if len(xs) == 0 {
		return nil
	}
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	out := make([]CDFPoint, len(s))
	n := float64(len(s))
	for i, v := range s {
		out[i] = CDFPoint{Value: v, Fraction: float64(i+1) / n}
	}
	return out
}

// CDFAt evaluates an empirical CDF (as returned by EmpiricalCDF) at value v.
func CDFAt(cdf []CDFPoint, v float64) float64 {
	// Binary search for the last point with Value <= v.
	i := sort.Search(len(cdf), func(i int) bool { return cdf[i].Value > v })
	if i == 0 {
		return 0
	}
	return cdf[i-1].Fraction
}

// Clamp limits v to [lo, hi].
func Clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// ClampInt limits v to [lo, hi].
func ClampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
