package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestConvexHullSquare(t *testing.T) {
	pts := []Vec2{{0, 0}, {1, 0}, {1, 1}, {0, 1}, {0.5, 0.5}, {0.2, 0.8}}
	hull := ConvexHull(pts)
	if len(hull) != 4 {
		t.Fatalf("hull size = %d, want 4 (%v)", len(hull), hull)
	}
	for _, c := range []Vec2{{0, 0}, {1, 0}, {1, 1}, {0, 1}} {
		found := false
		for _, h := range hull {
			if h == c {
				found = true
			}
		}
		if !found {
			t.Errorf("corner %v missing from hull", c)
		}
	}
	if a := PolygonArea(hull); !almostEq(a, 1, 1e-12) {
		t.Errorf("area = %v", a)
	}
}

func TestConvexHullDegenerate(t *testing.T) {
	if h := ConvexHull(nil); len(h) != 0 {
		t.Errorf("empty hull = %v", h)
	}
	if h := ConvexHull([]Vec2{{1, 2}}); len(h) != 1 {
		t.Errorf("single-point hull = %v", h)
	}
	if h := ConvexHull([]Vec2{{1, 2}, {1, 2}, {1, 2}}); len(h) != 1 {
		t.Errorf("duplicate-point hull = %v", h)
	}
	// Collinear points collapse to their extremes-inclusive sorted set.
	h := ConvexHull([]Vec2{{0, 0}, {1, 1}, {2, 2}, {3, 3}})
	if len(h) > 4 {
		t.Errorf("collinear hull too large: %v", h)
	}
	if !PointInHull(Vec2{0, 0}, h) {
		t.Error("collinear hull should contain endpoint")
	}
}

func TestPointInHull(t *testing.T) {
	hull := ConvexHull([]Vec2{{0, 0}, {4, 0}, {4, 4}, {0, 4}})
	cases := []struct {
		p    Vec2
		want bool
	}{
		{Vec2{2, 2}, true},
		{Vec2{0, 0}, true},   // vertex
		{Vec2{2, 0}, true},   // edge
		{Vec2{-1, 2}, false}, // outside left
		{Vec2{5, 5}, false},
		{Vec2{2, 4.001}, false},
	}
	for _, c := range cases {
		if got := PointInHull(c.p, hull); got != c.want {
			t.Errorf("PointInHull(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

// Property: every input point is inside its own convex hull.
func TestConvexHullContainsAllPoints(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 3 + r.Intn(40)
		pts := make([]Vec2, n)
		for i := range pts {
			pts[i] = Vec2{r.Float64()*100 - 50, r.Float64()*100 - 50}
		}
		hull := ConvexHull(pts)
		for _, p := range pts {
			if !PointInHull(p, hull) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 50, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: hull vertices are in convex position (strictly CCW turns).
func TestConvexHullIsConvex(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 30; trial++ {
		n := 5 + rng.Intn(100)
		pts := make([]Vec2, n)
		for i := range pts {
			pts[i] = Vec2{rng.NormFloat64() * 10, rng.NormFloat64() * 10}
		}
		hull := ConvexHull(pts)
		if len(hull) < 3 {
			continue
		}
		for i := range hull {
			a := hull[i]
			b := hull[(i+1)%len(hull)]
			c := hull[(i+2)%len(hull)]
			if cross(a, b, c) <= 0 {
				t.Fatalf("trial %d: hull not strictly convex at %d", trial, i)
			}
		}
	}
}

func TestPolygonArea(t *testing.T) {
	tri := []Vec2{{0, 0}, {4, 0}, {0, 3}}
	if a := PolygonArea(tri); !almostEq(a, 6, 1e-12) {
		t.Errorf("triangle area = %v", a)
	}
	if a := PolygonArea([]Vec2{{0, 0}, {1, 1}}); a != 0 {
		t.Errorf("degenerate area = %v", a)
	}
}

func TestTriangleThreshold(t *testing.T) {
	// Bimodal distribution: big peak near 0.1, small bump near 0.8.
	h := NewHistogram(0, 1, 100)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 5000; i++ {
		h.Add(0.1 + rng.NormFloat64()*0.02)
	}
	for i := 0; i < 300; i++ {
		h.Add(0.8 + rng.NormFloat64()*0.05)
	}
	th := h.TriangleThreshold()
	if th <= 0.12 || th >= 0.8 {
		t.Errorf("threshold = %v, want between the modes", th)
	}
}

func TestTriangleThresholdEdgeCases(t *testing.T) {
	h := NewHistogram(0, 1, 10)
	if th := h.TriangleThreshold(); th != 0 {
		t.Errorf("empty histogram threshold = %v", th)
	}
	h.Add(0.55)
	th := h.TriangleThreshold()
	if math.Abs(th-h.BinCenter(5)) > 1e-9 {
		t.Errorf("single-bin threshold = %v", th)
	}
	// Out-of-range values are clamped, not dropped.
	h.Add(-5)
	h.Add(99)
	if h.Total() != 3 {
		t.Errorf("total = %d, want 3", h.Total())
	}
	if h.Counts[0] != 1 || h.Counts[9] != 1 {
		t.Error("clamping failed")
	}
}

func TestHistogramPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for invalid histogram")
		}
	}()
	NewHistogram(1, 0, 10)
}
