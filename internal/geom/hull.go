package geom

import "sort"

// ConvexHull returns the convex hull of the given points in counterclockwise
// order (in the image convention with y downward this appears clockwise on
// screen). It implements Andrew's monotone chain, an O(n log n) relative of
// Sklansky's algorithm that the paper uses for ground and object contours.
// Degenerate inputs (fewer than 3 distinct points, collinear sets) return
// the distinct points sorted lexicographically.
func ConvexHull(points []Vec2) []Vec2 {
	pts := make([]Vec2, len(points))
	copy(pts, points)
	sort.Slice(pts, func(i, j int) bool {
		if pts[i].X != pts[j].X {
			return pts[i].X < pts[j].X
		}
		return pts[i].Y < pts[j].Y
	})
	// Deduplicate.
	uniq := pts[:0]
	for i, p := range pts {
		if i == 0 || p != pts[i-1] {
			uniq = append(uniq, p)
		}
	}
	pts = uniq
	n := len(pts)
	if n < 3 {
		out := make([]Vec2, n)
		copy(out, pts)
		return out
	}
	hull := make([]Vec2, 0, 2*n)
	// Lower hull.
	for _, p := range pts {
		for len(hull) >= 2 && cross(hull[len(hull)-2], hull[len(hull)-1], p) <= 0 {
			hull = hull[:len(hull)-1]
		}
		hull = append(hull, p)
	}
	// Upper hull.
	lower := len(hull) + 1
	for i := n - 2; i >= 0; i-- {
		p := pts[i]
		for len(hull) >= lower && cross(hull[len(hull)-2], hull[len(hull)-1], p) <= 0 {
			hull = hull[:len(hull)-1]
		}
		hull = append(hull, p)
	}
	return hull[:len(hull)-1]
}

// cross returns the z component of (b-a) × (c-a).
func cross(a, b, c Vec2) float64 {
	return (b.X-a.X)*(c.Y-a.Y) - (b.Y-a.Y)*(c.X-a.X)
}

// PointInHull reports whether p lies inside or on the convex polygon hull
// (vertices in the order produced by ConvexHull). Hulls with fewer than 3
// vertices contain only their own points (within a small tolerance).
func PointInHull(p Vec2, hull []Vec2) bool {
	n := len(hull)
	switch n {
	case 0:
		return false
	case 1:
		return p.Dist(hull[0]) < 1e-9
	case 2:
		// On-segment test.
		d := hull[1].Sub(hull[0])
		ap := p.Sub(hull[0])
		if absf(d.Cross(ap)) > 1e-9*(1+d.Norm()) {
			return false
		}
		t := ap.Dot(d) / d.Dot(d)
		return t >= -1e-9 && t <= 1+1e-9
	}
	// p is inside a convex CCW polygon iff it is on the left of (or on)
	// every edge.
	for i := 0; i < n; i++ {
		a, b := hull[i], hull[(i+1)%n]
		if cross(a, b, p) < -1e-9 {
			return false
		}
	}
	return true
}

// PolygonArea returns the absolute area enclosed by the polygon.
func PolygonArea(poly []Vec2) float64 {
	if len(poly) < 3 {
		return 0
	}
	s := 0.0
	for i := range poly {
		j := (i + 1) % len(poly)
		s += poly[i].Cross(poly[j])
	}
	return absf(s) / 2
}

func absf(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
