package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestVec2Basics(t *testing.T) {
	v := Vec2{3, 4}
	w := Vec2{-1, 2}
	if got := v.Add(w); got != (Vec2{2, 6}) {
		t.Errorf("Add = %v", got)
	}
	if got := v.Sub(w); got != (Vec2{4, 2}) {
		t.Errorf("Sub = %v", got)
	}
	if got := v.Scale(2); got != (Vec2{6, 8}) {
		t.Errorf("Scale = %v", got)
	}
	if got := v.Dot(w); got != 5 {
		t.Errorf("Dot = %v", got)
	}
	if got := v.Cross(w); got != 10 {
		t.Errorf("Cross = %v", got)
	}
	if got := v.Norm(); got != 5 {
		t.Errorf("Norm = %v", got)
	}
	if !v.Sub(v).IsZero() {
		t.Error("v-v should be zero")
	}
	if (Vec2{1, 0}).Angle() != 0 {
		t.Error("Angle of +x should be 0")
	}
	if !almostEq((Vec2{0, 1}).Angle(), math.Pi/2, 1e-12) {
		t.Error("Angle of +y should be π/2")
	}
}

func TestVec3Basics(t *testing.T) {
	v := Vec3{1, 2, 3}
	w := Vec3{4, 5, 6}
	if got := v.Cross(w); got != (Vec3{-3, 6, -3}) {
		t.Errorf("Cross = %v", got)
	}
	if got := v.Dot(w); got != 32 {
		t.Errorf("Dot = %v", got)
	}
	u := Vec3{0, 3, 4}.Normalize()
	if !almostEq(u.Norm(), 1, 1e-12) {
		t.Errorf("Normalize norm = %v", u.Norm())
	}
	if z := (Vec3{}).Normalize(); z != (Vec3{}) {
		t.Errorf("Normalize zero = %v", z)
	}
}

func TestVec3CrossOrthogonalProperty(t *testing.T) {
	f := func(ax, ay, az, bx, by, bz float64) bool {
		a := Vec3{clampT(ax), clampT(ay), clampT(az)}
		b := Vec3{clampT(bx), clampT(by), clampT(bz)}
		c := a.Cross(b)
		scale := a.Norm() * b.Norm()
		return math.Abs(c.Dot(a)) <= 1e-9*(1+scale) && math.Abs(c.Dot(b)) <= 1e-9*(1+scale)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// clampT maps arbitrary float64 quick-check inputs into a tame range and
// filters NaN/Inf so floating-point properties hold at reasonable scales.
func clampT(x float64) float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return 0
	}
	return math.Mod(x, 1e3)
}

func TestRotationMatrices(t *testing.T) {
	// Rotating +z about y by +90° should give +x (right-handed with y down).
	v := RotY(math.Pi / 2).Apply(Vec3{0, 0, 1})
	if !almostEq(v.X, 1, 1e-12) || !almostEq(v.Y, 0, 1e-12) || !almostEq(v.Z, 0, 1e-12) {
		t.Errorf("RotY(π/2)·z = %v", v)
	}
	// Rotation matrices are orthonormal: R·Rᵀ = I.
	r := RotX(0.3).Mul(RotY(-0.7)).Mul(RotZ(1.1))
	id := r.Mul(r.Transpose())
	want := Identity3()
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if !almostEq(id[i][j], want[i][j], 1e-12) {
				t.Fatalf("R·Rᵀ[%d][%d] = %v", i, j, id[i][j])
			}
		}
	}
}

func TestMat3MulApplyConsistency(t *testing.T) {
	a := RotX(0.5)
	b := RotZ(-0.25)
	v := Vec3{1, -2, 3}
	lhs := a.Mul(b).Apply(v)
	rhs := a.Apply(b.Apply(v))
	if !almostEq(lhs.X, rhs.X, 1e-12) || !almostEq(lhs.Y, rhs.Y, 1e-12) || !almostEq(lhs.Z, rhs.Z, 1e-12) {
		t.Errorf("(AB)v=%v A(Bv)=%v", lhs, rhs)
	}
}
