package geom

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

// lineModel fits y = m·x + c to 2-D points; the classic RANSAC demo.
type lineModel struct {
	pts []Vec2
}

type lineParams struct{ m, c float64 }

func (l *lineModel) Len() int { return len(l.pts) }

func (l *lineModel) Fit(idx []int) (interface{}, error) {
	var a [][]float64
	var b []float64
	for _, i := range idx {
		a = append(a, []float64{l.pts[i].X, 1})
		b = append(b, l.pts[i].Y)
	}
	u, err := LeastSquares(a, b)
	if err != nil {
		return nil, err
	}
	return lineParams{u[0], u[1]}, nil
}

func (l *lineModel) Residual(i int, params interface{}) float64 {
	p := params.(lineParams)
	return math.Abs(l.pts[i].Y - (p.m*l.pts[i].X + p.c))
}

func TestRANSACLineWithOutliers(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	model := &lineModel{}
	// 70 inliers on y = 2x + 1 with small noise, 30 gross outliers.
	for i := 0; i < 70; i++ {
		x := rng.Float64() * 10
		model.pts = append(model.pts, Vec2{x, 2*x + 1 + rng.NormFloat64()*0.05})
	}
	for i := 0; i < 30; i++ {
		model.pts = append(model.pts, Vec2{rng.Float64() * 10, rng.Float64()*40 - 20})
	}
	params, inliers, err := RANSAC(model, RANSACConfig{
		MinSamples:      2,
		Iterations:      100,
		InlierThreshold: 0.3,
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	p := params.(lineParams)
	if math.Abs(p.m-2) > 0.05 || math.Abs(p.c-1) > 0.2 {
		t.Errorf("fit = %+v, want m≈2 c≈1", p)
	}
	if len(inliers) < 60 {
		t.Errorf("found only %d inliers", len(inliers))
	}
}

func TestRANSACNotEnoughPoints(t *testing.T) {
	model := &lineModel{pts: []Vec2{{0, 0}}}
	_, _, err := RANSAC(model, RANSACConfig{MinSamples: 2, Iterations: 10, InlierThreshold: 1}, rand.New(rand.NewSource(1)))
	if err == nil {
		t.Error("expected error with too few points")
	}
}

func TestRANSACNoConsensus(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	model := &lineModel{}
	for i := 0; i < 20; i++ {
		model.pts = append(model.pts, Vec2{rng.Float64() * 10, rng.Float64() * 10})
	}
	_, _, err := RANSAC(model, RANSACConfig{
		MinSamples:      2,
		Iterations:      50,
		InlierThreshold: 1e-9, // nothing but the sample itself can be an inlier
		MinInliers:      10,
	}, rng)
	if !errors.Is(err, ErrNoConsensus) {
		t.Errorf("expected ErrNoConsensus, got %v", err)
	}
}

func TestDrawSampleDistinct(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, n := range []int{5, 10, 1000} {
		for _, k := range []int{2, 4} {
			dst := make([]int, k)
			drawSample(dst, n, rng)
			seen := map[int]bool{}
			for _, v := range dst {
				if v < 0 || v >= n {
					t.Fatalf("index %d out of range [0,%d)", v, n)
				}
				if seen[v] {
					t.Fatalf("duplicate index %d (n=%d k=%d)", v, n, k)
				}
				seen[v] = true
			}
		}
	}
}

func TestStatsHelpers(t *testing.T) {
	xs := []float64{4, 1, 3, 2, 5}
	if m := Mean(xs); !almostEq(m, 3, 1e-12) {
		t.Errorf("Mean = %v", m)
	}
	if m := Median(xs); !almostEq(m, 3, 1e-12) {
		t.Errorf("Median = %v", m)
	}
	if p := Percentile(xs, 0); p != 1 {
		t.Errorf("P0 = %v", p)
	}
	if p := Percentile(xs, 100); p != 5 {
		t.Errorf("P100 = %v", p)
	}
	if p := Percentile(xs, 25); !almostEq(p, 2, 1e-12) {
		t.Errorf("P25 = %v", p)
	}
	if Mean(nil) != 0 || Median(nil) != 0 || StdDev(nil) != 0 {
		t.Error("empty-slice stats should be 0")
	}
	if s := StdDev([]float64{2, 2, 2}); s != 0 {
		t.Errorf("StdDev of constant = %v", s)
	}
}

func TestEmpiricalCDF(t *testing.T) {
	cdf := EmpiricalCDF([]float64{3, 1, 2})
	if len(cdf) != 3 {
		t.Fatalf("len = %d", len(cdf))
	}
	if cdf[0].Value != 1 || !almostEq(cdf[0].Fraction, 1.0/3, 1e-12) {
		t.Errorf("first point = %+v", cdf[0])
	}
	if cdf[2].Value != 3 || cdf[2].Fraction != 1 {
		t.Errorf("last point = %+v", cdf[2])
	}
	if f := CDFAt(cdf, 0.5); f != 0 {
		t.Errorf("CDFAt(0.5) = %v", f)
	}
	if f := CDFAt(cdf, 2); !almostEq(f, 2.0/3, 1e-12) {
		t.Errorf("CDFAt(2) = %v", f)
	}
	if f := CDFAt(cdf, 10); f != 1 {
		t.Errorf("CDFAt(10) = %v", f)
	}
	if EmpiricalCDF(nil) != nil {
		t.Error("empty CDF should be nil")
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 3) != 3 || Clamp(-1, 0, 3) != 0 || Clamp(2, 0, 3) != 2 {
		t.Error("Clamp misbehaves")
	}
	if ClampInt(5, 0, 3) != 3 || ClampInt(-1, 0, 3) != 0 || ClampInt(2, 0, 3) != 2 {
		t.Error("ClampInt misbehaves")
	}
}

func TestRANSACSurvivesDegenerateSamples(t *testing.T) {
	// Many duplicated points make 2-point samples rank-deficient; RANSAC
	// must skip failed fits and still find the model from good draws.
	rng := rand.New(rand.NewSource(77))
	model := &lineModel{}
	for i := 0; i < 30; i++ {
		model.pts = append(model.pts, Vec2{5, 11}) // y = 2*5+1, duplicated
	}
	for i := 0; i < 30; i++ {
		x := rng.Float64() * 10
		model.pts = append(model.pts, Vec2{x, 2*x + 1})
	}
	params, inliers, err := RANSAC(model, RANSACConfig{
		MinSamples: 2, Iterations: 200, InlierThreshold: 0.1,
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	p := params.(lineParams)
	if math.Abs(p.m-2) > 0.05 || math.Abs(p.c-1) > 0.3 {
		t.Errorf("fit = %+v", p)
	}
	if len(inliers) < 50 {
		t.Errorf("inliers = %d", len(inliers))
	}
}
