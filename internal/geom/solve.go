package geom

import (
	"errors"
	"math"
)

// ErrSingular is returned when a linear system has no unique solution.
var ErrSingular = errors.New("geom: singular system")

// Solve2x2 solves the 2×2 system
//
//	a11·x + a12·y = b1
//	a21·x + a22·y = b2
//
// returning ErrSingular when the determinant is (numerically) zero.
func Solve2x2(a11, a12, a21, a22, b1, b2 float64) (x, y float64, err error) {
	det := a11*a22 - a12*a21
	scale := math.Max(math.Abs(a11*a22), math.Abs(a12*a21))
	if scale == 0 || math.Abs(det) < 1e-12*math.Max(scale, 1) {
		return 0, 0, ErrSingular
	}
	x = (b1*a22 - b2*a12) / det
	y = (a11*b2 - a21*b1) / det
	return x, y, nil
}

// LeastSquares2 solves the over-determined system A·u = b for a 2-vector u
// in the least-squares sense via the normal equations. Each row of a must
// have exactly two entries. This is the solver behind the paper's Eq. (7):
// rows are (x·f, y·f) and b holds y·vx − x·vy.
func LeastSquares2(a [][2]float64, b []float64) (u [2]float64, err error) {
	if len(a) != len(b) {
		return u, errors.New("geom: dimension mismatch")
	}
	if len(a) < 2 {
		return u, errors.New("geom: need at least two equations")
	}
	var s11, s12, s22, t1, t2 float64
	for i, row := range a {
		s11 += row[0] * row[0]
		s12 += row[0] * row[1]
		s22 += row[1] * row[1]
		t1 += row[0] * b[i]
		t2 += row[1] * b[i]
	}
	x, y, err := Solve2x2(s11, s12, s12, s22, t1, t2)
	if err != nil {
		return u, err
	}
	return [2]float64{x, y}, nil
}

// LeastSquares solves the over-determined system A·u = b for an n-vector u
// via normal equations and Gaussian elimination with partial pivoting.
// It is used for general model fitting in tests and the renderer.
func LeastSquares(a [][]float64, b []float64) ([]float64, error) {
	if len(a) == 0 || len(a) != len(b) {
		return nil, errors.New("geom: dimension mismatch")
	}
	n := len(a[0])
	if len(a) < n {
		return nil, errors.New("geom: underdetermined system")
	}
	// Build normal equations M·u = v with M = AᵀA, v = Aᵀb.
	m := make([][]float64, n)
	for i := range m {
		m[i] = make([]float64, n+1)
	}
	for r, row := range a {
		if len(row) != n {
			return nil, errors.New("geom: ragged matrix")
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				m[i][j] += row[i] * row[j]
			}
			m[i][n] += row[i] * b[r]
		}
	}
	return gaussSolve(m)
}

// gaussSolve solves the augmented system m (n rows of n+1 columns) in place.
func gaussSolve(m [][]float64) ([]float64, error) {
	n := len(m)
	for col := 0; col < n; col++ {
		// Partial pivot.
		pivot := col
		for r := col + 1; r < n; r++ {
			if math.Abs(m[r][col]) > math.Abs(m[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(m[pivot][col]) < 1e-12 {
			return nil, ErrSingular
		}
		m[col], m[pivot] = m[pivot], m[col]
		inv := 1 / m[col][col]
		for j := col; j <= n; j++ {
			m[col][j] *= inv
		}
		for r := 0; r < n; r++ {
			if r == col || m[r][col] == 0 {
				continue
			}
			f := m[r][col]
			for j := col; j <= n; j++ {
				m[r][j] -= f * m[col][j]
			}
		}
	}
	u := make([]float64, n)
	for i := range u {
		u[i] = m[i][n]
	}
	return u, nil
}
