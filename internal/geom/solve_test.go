package geom

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

func TestSolve2x2(t *testing.T) {
	x, y, err := Solve2x2(2, 1, 1, 3, 5, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(x, 1, 1e-12) || !almostEq(y, 3, 1e-12) {
		t.Errorf("got (%v,%v), want (1,3)", x, y)
	}
}

func TestSolve2x2Singular(t *testing.T) {
	if _, _, err := Solve2x2(1, 2, 2, 4, 3, 6); !errors.Is(err, ErrSingular) {
		t.Errorf("expected ErrSingular, got %v", err)
	}
	if _, _, err := Solve2x2(0, 0, 0, 0, 0, 0); !errors.Is(err, ErrSingular) {
		t.Errorf("expected ErrSingular for zero matrix, got %v", err)
	}
}

func TestLeastSquares2Exact(t *testing.T) {
	// Overdetermined but consistent: u = (2, -1).
	a := [][2]float64{{1, 0}, {0, 1}, {1, 1}, {2, 3}}
	b := []float64{2, -1, 1, 1}
	u, err := LeastSquares2(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(u[0], 2, 1e-9) || !almostEq(u[1], -1, 1e-9) {
		t.Errorf("u = %v", u)
	}
}

func TestLeastSquares2Noisy(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	trueU := [2]float64{0.03, -0.015}
	var a [][2]float64
	var b []float64
	for i := 0; i < 200; i++ {
		r := [2]float64{rng.Float64()*100 - 50, rng.Float64()*100 - 50}
		a = append(a, r)
		b = append(b, r[0]*trueU[0]+r[1]*trueU[1]+rng.NormFloat64()*0.01)
	}
	u, err := LeastSquares2(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(u[0]-trueU[0]) > 2e-3 || math.Abs(u[1]-trueU[1]) > 2e-3 {
		t.Errorf("u = %v, want ≈ %v", u, trueU)
	}
}

func TestLeastSquares2Errors(t *testing.T) {
	if _, err := LeastSquares2([][2]float64{{1, 1}}, []float64{1}); err == nil {
		t.Error("expected error for single equation")
	}
	if _, err := LeastSquares2([][2]float64{{1, 1}, {1, 1}}, []float64{1}); err == nil {
		t.Error("expected error for dimension mismatch")
	}
	// Rank-deficient design matrix.
	if _, err := LeastSquares2([][2]float64{{1, 2}, {2, 4}, {3, 6}}, []float64{1, 2, 3}); err == nil {
		t.Error("expected error for rank-deficient system")
	}
}

func TestLeastSquaresGeneral(t *testing.T) {
	// Fit a quadratic y = 1 + 2x + 3x².
	var a [][]float64
	var b []float64
	for x := -5.0; x <= 5; x++ {
		a = append(a, []float64{1, x, x * x})
		b = append(b, 1+2*x+3*x*x)
	}
	u, err := LeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 2, 3}
	for i := range want {
		if !almostEq(u[i], want[i], 1e-8) {
			t.Errorf("u[%d] = %v, want %v", i, u[i], want[i])
		}
	}
}

func TestLeastSquaresErrors(t *testing.T) {
	if _, err := LeastSquares(nil, nil); err == nil {
		t.Error("expected error for empty system")
	}
	if _, err := LeastSquares([][]float64{{1, 2}}, []float64{1}); err == nil {
		t.Error("expected error for underdetermined system")
	}
	if _, err := LeastSquares([][]float64{{1, 2}, {3}}, []float64{1, 2}); err == nil {
		t.Error("expected error for ragged matrix")
	}
}
