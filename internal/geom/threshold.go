package geom

import "math"

// Histogram is a fixed-width binned histogram over [Min, Max).
type Histogram struct {
	Min, Max float64
	Counts   []int
	total    int
}

// NewHistogram creates a histogram with n bins over [min, max). It panics if
// n <= 0 or max <= min, which indicates a programming error.
func NewHistogram(min, max float64, n int) *Histogram {
	if n <= 0 || max <= min {
		panic("geom: invalid histogram parameters")
	}
	return &Histogram{Min: min, Max: max, Counts: make([]int, n)}
}

// Add records value v; values outside [Min, Max) are clamped into the
// nearest bin so tails are never silently dropped.
func (h *Histogram) Add(v float64) {
	n := len(h.Counts)
	i := int((v - h.Min) / (h.Max - h.Min) * float64(n))
	if i < 0 {
		i = 0
	}
	if i >= n {
		i = n - 1
	}
	h.Counts[i]++
	h.total++
}

// Total returns the number of recorded values.
func (h *Histogram) Total() int { return h.total }

// BinCenter returns the midpoint value of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.Max - h.Min) / float64(len(h.Counts))
	return h.Min + (float64(i)+0.5)*w
}

// TriangleThreshold applies Zack's triangle method to the histogram and
// returns the threshold value. The paper uses it to separate "ground"
// normalized motion-vector magnitudes (the dominant peak) from everything
// else: a line is drawn from the histogram peak to the farthest empty tail,
// and the bin with the maximum perpendicular distance below that line is the
// threshold.
//
// The returned value is the center of the threshold bin. Empty histograms
// return Min.
func (h *Histogram) TriangleThreshold() float64 {
	if h.total == 0 {
		return h.Min
	}
	peak, peakV := 0, -1
	lo, hi := -1, -1
	for i, c := range h.Counts {
		if c > peakV {
			peak, peakV = i, c
		}
		if c > 0 {
			if lo < 0 {
				lo = i
			}
			hi = i
		}
	}
	// Pick the longer tail to draw the triangle toward.
	end := hi
	if peak-lo > hi-peak {
		end = lo
	}
	if end == peak {
		return h.BinCenter(peak)
	}
	// Line from (peak, peakV) to (end, 0); maximize distance of (i, c).
	dx := float64(end - peak)
	dy := float64(0 - peakV)
	norm := dx*dx + dy*dy
	bestI, bestD := peak, -1.0
	step := 1
	if end < peak {
		step = -1
	}
	for i := peak; i != end; i += step {
		px := float64(i - peak)
		py := float64(h.Counts[i] - peakV)
		// Perpendicular distance (unnormalized is fine for argmax, but
		// keep the true value for stability checks).
		d := absf(px*dy-py*dx) / math.Sqrt(norm)
		if d > bestD {
			bestD = d
			bestI = i
		}
	}
	return h.BinCenter(bestI)
}
