// Package geom provides the small geometric and numerical toolkit used
// throughout the DiVE reproduction: 2-D/3-D vectors and matrices, linear
// least squares, a generic RANSAC driver, convex hulls, histogram
// thresholding, and summary statistics.
//
// Everything in this package is deterministic; routines that need
// randomness accept an explicit *rand.Rand.
package geom

import "math"

// Vec2 is a point or vector in the image plane. The convention throughout
// the repository follows the paper: x grows rightward and y grows downward,
// with the origin at the camera principal point unless stated otherwise.
type Vec2 struct {
	X, Y float64
}

// Add returns v + w.
func (v Vec2) Add(w Vec2) Vec2 { return Vec2{v.X + w.X, v.Y + w.Y} }

// Sub returns v - w.
func (v Vec2) Sub(w Vec2) Vec2 { return Vec2{v.X - w.X, v.Y - w.Y} }

// Scale returns v scaled by s.
func (v Vec2) Scale(s float64) Vec2 { return Vec2{v.X * s, v.Y * s} }

// Dot returns the dot product of v and w.
func (v Vec2) Dot(w Vec2) float64 { return v.X*w.X + v.Y*w.Y }

// Cross returns the 2-D cross product (the z component of v × w).
func (v Vec2) Cross(w Vec2) float64 { return v.X*w.Y - v.Y*w.X }

// Norm returns the Euclidean length of v.
func (v Vec2) Norm() float64 { return math.Hypot(v.X, v.Y) }

// Dist returns the Euclidean distance between v and w.
func (v Vec2) Dist(w Vec2) float64 { return v.Sub(w).Norm() }

// Angle returns the direction of v in radians in (-π, π].
func (v Vec2) Angle() float64 { return math.Atan2(v.Y, v.X) }

// IsZero reports whether both components are exactly zero.
func (v Vec2) IsZero() bool { return v.X == 0 && v.Y == 0 }

// Vec3 is a point or vector in 3-D space. The camera frame follows the
// paper's pinhole model: x rightward, y downward, z forward (optical axis).
type Vec3 struct {
	X, Y, Z float64
}

// Add returns v + w.
func (v Vec3) Add(w Vec3) Vec3 { return Vec3{v.X + w.X, v.Y + w.Y, v.Z + w.Z} }

// Sub returns v - w.
func (v Vec3) Sub(w Vec3) Vec3 { return Vec3{v.X - w.X, v.Y - w.Y, v.Z - w.Z} }

// Scale returns v scaled by s.
func (v Vec3) Scale(s float64) Vec3 { return Vec3{v.X * s, v.Y * s, v.Z * s} }

// Dot returns the dot product of v and w.
func (v Vec3) Dot(w Vec3) float64 { return v.X*w.X + v.Y*w.Y + v.Z*w.Z }

// Cross returns the cross product v × w.
func (v Vec3) Cross(w Vec3) Vec3 {
	return Vec3{
		v.Y*w.Z - v.Z*w.Y,
		v.Z*w.X - v.X*w.Z,
		v.X*w.Y - v.Y*w.X,
	}
}

// Norm returns the Euclidean length of v.
func (v Vec3) Norm() float64 { return math.Sqrt(v.Dot(v)) }

// Normalize returns v scaled to unit length. The zero vector is returned
// unchanged.
func (v Vec3) Normalize() Vec3 {
	n := v.Norm()
	if n == 0 {
		return v
	}
	return v.Scale(1 / n)
}

// Mat3 is a 3×3 matrix in row-major order, used for camera rotations.
type Mat3 [3][3]float64

// Identity3 returns the 3×3 identity matrix.
func Identity3() Mat3 {
	return Mat3{{1, 0, 0}, {0, 1, 0}, {0, 0, 1}}
}

// Mul returns the matrix product m·n.
func (m Mat3) Mul(n Mat3) Mat3 {
	var r Mat3
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			s := 0.0
			for k := 0; k < 3; k++ {
				s += m[i][k] * n[k][j]
			}
			r[i][j] = s
		}
	}
	return r
}

// Apply returns m·v.
func (m Mat3) Apply(v Vec3) Vec3 {
	return Vec3{
		m[0][0]*v.X + m[0][1]*v.Y + m[0][2]*v.Z,
		m[1][0]*v.X + m[1][1]*v.Y + m[1][2]*v.Z,
		m[2][0]*v.X + m[2][1]*v.Y + m[2][2]*v.Z,
	}
}

// Transpose returns the transpose of m. For rotation matrices this is the
// inverse.
func (m Mat3) Transpose() Mat3 {
	var r Mat3
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			r[i][j] = m[j][i]
		}
	}
	return r
}

// RotX returns the rotation matrix for angle a (radians) about the x axis.
func RotX(a float64) Mat3 {
	c, s := math.Cos(a), math.Sin(a)
	return Mat3{{1, 0, 0}, {0, c, -s}, {0, s, c}}
}

// RotY returns the rotation matrix for angle a (radians) about the y axis.
func RotY(a float64) Mat3 {
	c, s := math.Cos(a), math.Sin(a)
	return Mat3{{c, 0, s}, {0, 1, 0}, {-s, 0, c}}
}

// RotZ returns the rotation matrix for angle a (radians) about the z axis.
func RotZ(a float64) Mat3 {
	c, s := math.Cos(a), math.Sin(a)
	return Mat3{{c, -s, 0}, {s, c, 0}, {0, 0, 1}}
}
