package geom

import (
	"errors"
	"math/rand"
)

// RANSACConfig controls the generic RANSAC driver.
type RANSACConfig struct {
	// MinSamples is the number of data points drawn per hypothesis.
	MinSamples int
	// Iterations is the number of hypotheses to evaluate.
	Iterations int
	// InlierThreshold is the maximum residual for a point to count as an
	// inlier of a hypothesis.
	InlierThreshold float64
	// MinInliers, when > 0, rejects consensus sets smaller than this.
	MinInliers int
}

// RANSACModel abstracts the model being fitted. Fit estimates model
// parameters from the points with the given indices; Residual evaluates one
// point against those parameters.
type RANSACModel interface {
	// Len returns the number of data points.
	Len() int
	// Fit estimates parameters from the selected points. It may fail for
	// degenerate selections.
	Fit(indices []int) (params interface{}, err error)
	// Residual returns the absolute residual of point i under params.
	Residual(i int, params interface{}) float64
}

// ErrNoConsensus is returned when RANSAC finds no acceptable model.
var ErrNoConsensus = errors.New("geom: ransac found no consensus")

// RANSAC runs the classic Fischler–Bolles loop (used by the paper to solve
// the over-determined rotation system in the presence of noisy motion
// vectors): repeatedly fit a model to a random minimal sample, score it by
// consensus-set size, and finally refit to the best consensus set.
//
// It returns the refitted parameters and the inlier indices.
func RANSAC(m RANSACModel, cfg RANSACConfig, rng *rand.Rand) (interface{}, []int, error) {
	n := m.Len()
	if n < cfg.MinSamples {
		return nil, nil, errors.New("geom: not enough points for ransac")
	}
	best := -1
	var bestInliers []int
	sample := make([]int, cfg.MinSamples)
	for it := 0; it < cfg.Iterations; it++ {
		drawSample(sample, n, rng)
		params, err := m.Fit(sample)
		if err != nil {
			continue
		}
		var inliers []int
		for i := 0; i < n; i++ {
			if m.Residual(i, params) <= cfg.InlierThreshold {
				inliers = append(inliers, i)
			}
		}
		if len(inliers) > best {
			best = len(inliers)
			bestInliers = inliers
		}
	}
	if bestInliers == nil || best < cfg.MinSamples || (cfg.MinInliers > 0 && best < cfg.MinInliers) {
		return nil, nil, ErrNoConsensus
	}
	params, err := m.Fit(bestInliers)
	if err != nil {
		return nil, nil, err
	}
	return params, bestInliers, nil
}

// drawSample fills dst with distinct indices in [0, n).
func drawSample(dst []int, n int, rng *rand.Rand) {
	k := len(dst)
	if k*4 >= n {
		// Dense draw: partial Fisher–Yates over an index array.
		idx := rng.Perm(n)
		copy(dst, idx[:k])
		return
	}
	seen := make(map[int]bool, k)
	for i := 0; i < k; {
		v := rng.Intn(n)
		if !seen[v] {
			seen[v] = true
			dst[i] = v
			i++
		}
	}
}
