// Visualize: renders a few frames of a synthetic drive, runs the DiVE
// agent, and writes PGM snapshots showing what the system sees — the raw
// frame, the decoded differentially-encoded frame, the extracted foreground
// regions and the edge detections — the reproduction of the paper's
// Figure 1/8/15 illustrations.
//
//	go run ./examples/visualize [-out /tmp/dive-viz]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"dive"
	"dive/internal/core"
	"dive/internal/detect"
	"dive/internal/imgx"
	"dive/internal/world"
)

func main() {
	out := flag.String("out", "/tmp/dive-viz", "output directory for PGM images")
	flag.Parse()
	if err := run(*out); err != nil {
		log.Fatal(err)
	}
}

func run(outDir string) error {
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return err
	}
	profile := world.NuScenesLike()
	profile.ClipDuration = 2
	clip := world.GenerateClip(profile, 42)

	agent, err := dive.NewAgent(dive.Config{
		Width: clip.W, Height: clip.H, FPS: clip.FPS, FocalPx: clip.Focal,
		BandwidthPriorBps: dive.Mbps(2),
	})
	if err != nil {
		return err
	}
	decoder, err := dive.NewDecoder(clip.W, clip.H)
	if err != nil {
		return err
	}
	detector := detect.New(detect.DefaultConfig())

	for i, frame := range clip.Frames {
		now := float64(i) / clip.FPS
		o, err := agent.Process(frame, now)
		if err != nil {
			return err
		}
		agent.AckUplink(now, now+float64(o.Bits)/dive.Mbps(2), o.Bits)
		decoded, err := decoder.Decode(o.Bitstream)
		if err != nil {
			return err
		}
		// Snapshot a few interesting frames.
		if i != 4 && i != 10 && i != 16 {
			continue
		}
		if err := writePGM(filepath.Join(outDir, fmt.Sprintf("frame%02d_raw.pgm", i)), frame); err != nil {
			return err
		}
		// Decoded frame with foreground contours drawn bright.
		annotated := decoded.Clone()
		for _, r := range o.ForegroundRegions {
			imgx.DrawRectOutline(annotated, imgx.Rect{MinX: r.MinX, MinY: r.MinY, MaxX: r.MaxX, MaxY: r.MaxY}, 255)
		}
		if err := writePGM(filepath.Join(outDir, fmt.Sprintf("frame%02d_decoded_fg.pgm", i)), annotated); err != nil {
			return err
		}
		// Edge detections on the decoded frame.
		dets := detector.Detect(decoded, frame, clip.GT[i], int64(i))
		detImg := decoded.Clone()
		for _, d := range dets {
			imgx.DrawRectOutline(detImg, d.Box, 0)
			imgx.DrawRectOutline(detImg, imgx.Rect{
				MinX: d.Box.MinX - 1, MinY: d.Box.MinY - 1,
				MaxX: d.Box.MaxX + 1, MaxY: d.Box.MaxY + 1,
			}, 255)
		}
		if err := writePGM(filepath.Join(outDir, fmt.Sprintf("frame%02d_detections.pgm", i)), detImg); err != nil {
			return err
		}
		fmt.Printf("frame %2d: %d foreground regions, %d detections, δ=%d, %0.1f kbit\n",
			i, len(o.ForegroundRegions), len(dets), o.Delta, float64(o.Bits)/1000)
	}
	fmt.Printf("\nPGM snapshots written to %s\n", outDir)
	return fig15(outDir)
}

// fig15 reproduces the paper's Figure 15: foreground extraction samples
// for the three ego motion states. For one frame of each state it writes a
// stage overlay — ground macroblocks darkened, extracted foreground
// macroblocks brightened, object contours outlined.
func fig15(outDir string) error {
	profile := world.NuScenesLike()
	profile.ClipDuration = 4.5 // covers straight, turning and static phases
	clip := world.GenerateClip(profile, 42)

	cfg := core.DefaultAgentConfig(clip.W, clip.H, clip.FPS, clip.Focal)
	agent, err := core.NewAgent(cfg)
	if err != nil {
		return err
	}
	written := map[world.MotionState]bool{}
	for i, frame := range clip.Frames {
		now := float64(i) / clip.FPS
		fr, err := agent.ProcessFrame(frame, now)
		if err != nil {
			return err
		}
		agent.OnTransmitComplete(now, now+float64(fr.Encoded.NumBits)/dive.Mbps(2), fr.Encoded.NumBits)
		state := clip.Poses[i].State
		// The static phase reuses an earlier extraction — exactly what the
		// paper illustrates — so a reused foreground still counts.
		if written[state] || fr.Foreground == nil {
			continue
		}
		img := overlayStages(frame, fr.Foreground)
		name := filepath.Join(outDir, fmt.Sprintf("fig15_%s.pgm", state))
		if err := writePGM(name, img); err != nil {
			return err
		}
		fmt.Printf("fig15 %s: frame %d, %d objects, fg=%.0f%%\n",
			state, i, len(fr.Foreground.Objects), fr.Foreground.Fraction()*100)
		written[state] = true
		if len(written) == 3 {
			break
		}
	}
	return nil
}

// overlayStages renders the foreground-extraction stages onto a copy of the
// frame: ground macroblocks darkened, foreground mask brightened, contours
// drawn white.
func overlayStages(frame *imgx.Plane, fg *core.ForegroundResult) *imgx.Plane {
	img := frame.Clone()
	const mb = 16
	for i := range fg.GroundMask {
		bx, by := i%fg.MBW, i/fg.MBW
		r := imgx.NewRect(bx*mb, by*mb, mb, mb)
		switch {
		case fg.Mask[i]:
			scaleRegion(img, r, 1.35)
		case fg.GroundMask[i]:
			scaleRegion(img, r, 0.55)
		}
	}
	for _, obj := range fg.Objects {
		imgx.DrawRectOutline(img, obj.BBox, 255)
	}
	return img
}

// scaleRegion multiplies luma inside rect by f.
func scaleRegion(p *imgx.Plane, rect imgx.Rect, f float64) {
	r := rect.ClipTo(p.W, p.H)
	for y := r.MinY; y < r.MaxY; y++ {
		row := p.Row(y)
		for x := r.MinX; x < r.MaxX; x++ {
			v := float64(row[x]) * f
			if v > 255 {
				v = 255
			}
			row[x] = uint8(v)
		}
	}
}

// writePGM stores a plane as a binary PGM (viewable almost anywhere).
func writePGM(path string, p *imgx.Plane) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if _, err := fmt.Fprintf(f, "P5\n%d %d\n255\n", p.W, p.H); err != nil {
		return err
	}
	_, err = f.Write(p.Pix)
	return err
}
