// Outage: demonstrates motion-vector-based offline tracking (MOT) through a
// hard link outage. The uplink dies for a second every few seconds; the
// agent detects the stall with its head-of-queue timer and keeps the
// detection stream alive by advancing cached boxes with the codec's motion
// vectors (the paper's Section III-E / Figure 13).
//
//	go run ./examples/outage
package main

import (
	"fmt"
	"log"

	"dive/internal/metrics"
	"dive/internal/netsim"
	"dive/internal/sim"
	"dive/internal/world"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	profile := world.NuScenesLike()
	profile.ClipDuration = 8
	clip := world.GenerateClip(profile, 15)
	fmt.Printf("clip: %s, %d frames; 2 Mbps uplink with 1s outages every 3s\n\n",
		clip.Profile, clip.NumFrames())

	mkLink := func() *netsim.Link {
		return netsim.NewLink(&netsim.OutageTrace{
			Inner:    netsim.ConstantTrace(netsim.Mbps(2)),
			Start:    1.2,
			Interval: 3,
			Duration: 1,
		}, 0.012)
	}

	env := sim.NewEnv(5)
	withMOT, err := (&sim.DiVE{}).Run(clip, mkLink(), env)
	if err != nil {
		return err
	}
	withoutMOT, err := (&sim.DiVE{DisableMOT: true}).Run(clip, mkLink(), env)
	if err != nil {
		return err
	}
	oracle := sim.OracleDetections(clip, env)

	fmt.Println("per-frame view (· uploaded, T tracked locally):")
	for i := range clip.Frames {
		mark := "·"
		if !withMOT.Uploaded[i] {
			mark = "T"
		}
		fmt.Print(mark)
		if (i+1)%int(clip.FPS) == 0 {
			fmt.Printf("  (second %d)\n", (i+1)/int(clip.FPS))
		}
	}
	fmt.Println()

	local := 0
	for _, up := range withMOT.Uploaded {
		if !up {
			local++
		}
	}
	mWith := metrics.MAP(withMOT.Detections, oracle, metrics.DefaultIoU)
	mWithout := metrics.MAP(withoutMOT.Detections, oracle, metrics.DefaultIoU)
	fmt.Printf("\nframes tracked locally: %d/%d\n", local, clip.NumFrames())
	fmt.Printf("mAP with offline tracking:    %.3f\n", mWith)
	fmt.Printf("mAP without offline tracking: %.3f\n", mWithout)
	fmt.Printf("tracked-frame response time:  %.1f ms (vs %.1f ms when uploading)\n",
		trackedRT(withMOT)*1000, uploadedRT(withMOT)*1000)
	return nil
}

// trackedRT averages response times of locally-tracked frames.
func trackedRT(r *sim.Result) float64 {
	s, n := 0.0, 0
	for i, up := range r.Uploaded {
		if !up {
			s += r.ResponseTimes[i]
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return s / float64(n)
}

// uploadedRT averages response times of uploaded frames.
func uploadedRT(r *sim.Result) float64 {
	s, n := 0.0, 0
	for i, up := range r.Uploaded {
		if up {
			s += r.ResponseTimes[i]
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return s / float64(n)
}
