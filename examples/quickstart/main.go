// Quickstart: encode a short synthetic drive with the public dive.Agent
// API, decode it server-side, and print what DiVE did per frame — the
// motion judgement, the extracted foreground, the adaptive QP delta and the
// resulting bitrate.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"dive"
	"dive/internal/imgx"
	"dive/internal/world"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Render a 3-second nuScenes-flavored drive. In a real deployment
	// frames would come from a camera; here the synthetic world stands in.
	profile := world.NuScenesLike()
	profile.ClipDuration = 3
	clip := world.GenerateClip(profile, 42)
	fmt.Printf("clip: %s %dx%d @ %.0f FPS, %d frames\n\n",
		clip.Profile, clip.W, clip.H, clip.FPS, clip.NumFrames())

	agent, err := dive.NewAgent(dive.Config{
		Width: clip.W, Height: clip.H,
		FPS: clip.FPS, FocalPx: clip.Focal,
		BandwidthPriorBps: dive.Mbps(2),
	})
	if err != nil {
		return err
	}
	decoder, err := dive.NewDecoder(clip.W, clip.H)
	if err != nil {
		return err
	}

	const uplink = 2e6 // pretend 2 Mbps
	totalBits := 0
	for i, frame := range clip.Frames {
		now := float64(i) / clip.FPS
		out, err := agent.Process(frame, now)
		if err != nil {
			return err
		}
		totalBits += out.Bits

		// Ship out.Bitstream to the edge; here we just decode locally and
		// measure what the server would see.
		decoded, err := decoder.Decode(out.Bitstream)
		if err != nil {
			return err
		}
		psnr := imgx.PSNR(imgx.MSE(frame, decoded))

		// Feed transport feedback back into the rate controller.
		tx := float64(out.Bits) / uplink
		agent.AckUplink(now, now+tx, out.Bits)

		motion := "stopped"
		if out.Moving {
			motion = "moving"
		}
		fmt.Printf("frame %2d [%s]: %5.1f kbit, qp=%2d, δ=%2d, η=%.2f, %s, fg=%4.1f%% (%d regions), psnr=%4.1f dB\n",
			i, out.FrameTypeString(), float64(out.Bits)/1000, out.BaseQP, out.Delta,
			out.Eta, motion, out.ForegroundFraction*100, len(out.ForegroundRegions), psnr)
	}
	dur := float64(clip.NumFrames()) / clip.FPS
	fmt.Printf("\ntotal: %.2f Mbps over %.1fs — fits the 2 Mbps uplink\n",
		float64(totalBits)/dur/1e6, dur)
	return nil
}
