// Tracereplay: runs DiVE and the baselines over a RECORDED bandwidth trace
// (the CSV format of published cellular logs) instead of a synthetic link —
// how you would evaluate the system against your own network measurements.
//
//	go run ./examples/tracereplay [-trace path/to/trace.csv]
//
// Without -trace, a bundled LTE-like example trace is used.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"dive/internal/baselines"
	"dive/internal/metrics"
	"dive/internal/netsim"
	"dive/internal/sim"
	"dive/internal/world"
)

// exampleTrace is a 30-second LTE-flavored trace: healthy cell, congested
// sector, a deep fade, and recovery.
const exampleTrace = `# time_s,bandwidth_mbps
0,4.2
3,3.1
6,2.4
9,1.2
12,0.6
14,0.2
15.5,1.8
19,2.9
24,3.8
`

func main() {
	tracePath := flag.String("trace", "", "bandwidth trace CSV (time_s,bandwidth_mbps)")
	flag.Parse()
	if err := run(*tracePath); err != nil {
		log.Fatal(err)
	}
}

func run(tracePath string) error {
	var trace *netsim.StepTrace
	var err error
	if tracePath != "" {
		f, err := os.Open(tracePath)
		if err != nil {
			return err
		}
		defer f.Close()
		trace, err = netsim.ParseTraceCSV(f)
		if err != nil {
			return err
		}
		fmt.Printf("replaying %s (%d samples)\n\n", tracePath, len(trace.Times))
	} else {
		trace, err = netsim.ParseTraceCSV(strings.NewReader(exampleTrace))
		if err != nil {
			return err
		}
		fmt.Println("replaying the bundled LTE-like example trace (pass -trace for your own)")
		fmt.Println()
	}

	profile := world.NuScenesLike()
	profile.ClipDuration = 6
	clip := world.GenerateClip(profile, 19)

	schemes := []sim.Scheme{&sim.DiVE{}, &baselines.DDS{}, &baselines.O3{}}
	fmt.Printf("%-6s  %6s  %9s  %9s  %8s\n", "scheme", "mAP", "meanRT", "p95RT", "Mbps")
	for _, s := range schemes {
		env := sim.NewEnv(3)
		link := netsim.NewLink(trace, 0.012)
		res, err := s.Run(clip, link, env)
		if err != nil {
			return err
		}
		oracle := sim.OracleDetections(clip, env)
		lat := metrics.SummarizeLatency(res.ResponseTimes)
		dur := float64(clip.NumFrames()) / clip.FPS
		fmt.Printf("%-6s  %6.3f  %7.1fms  %7.1fms  %8.2f\n",
			res.Scheme,
			metrics.MAP(res.Detections, oracle, metrics.DefaultIoU),
			lat.Mean*1000, lat.P95*1000,
			float64(res.TotalBits())/dur/1e6)
	}
	return nil
}
