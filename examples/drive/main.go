// Drive: an end-to-end comparison on one simulated suburban drive over a
// fading mobile uplink — DiVE against the DDS and EAAR baselines, the
// scenario the paper's introduction motivates (Figure 16/17 in miniature).
//
//	go run ./examples/drive
package main

import (
	"fmt"
	"log"

	"dive/internal/baselines"
	"dive/internal/metrics"
	"dive/internal/netsim"
	"dive/internal/sim"
	"dive/internal/world"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	profile := world.RobotCarLike()
	profile.ClipDuration = 5
	clip := world.GenerateClip(profile, 7)
	fmt.Printf("drive: %s %dx%d @ %.0f FPS, %d frames, fading 1–3 Mbps uplink\n\n",
		clip.Profile, clip.W, clip.H, clip.FPS, clip.NumFrames())

	mkLink := func() *netsim.Link {
		return netsim.NewLink(&netsim.FadingTrace{
			Base:   netsim.Mbps(2),
			Swing:  0.5, // 1..3 Mbps slow fade
			Period: 8,
			Jitter: 0.15,
			Seed:   3,
		}, 0.012)
	}

	schemes := []sim.Scheme{
		&sim.DiVE{},
		&baselines.DDS{},
		&baselines.EAAR{},
	}
	fmt.Printf("%-6s  %6s  %6s  %6s  %9s  %9s  %8s\n",
		"scheme", "mAP", "carAP", "pedAP", "meanRT", "p95RT", "Mbps")
	for _, s := range schemes {
		env := sim.NewEnv(11)
		res, err := s.Run(clip, mkLink(), env)
		if err != nil {
			return err
		}
		oracle := sim.OracleDetections(clip, env)
		car := metrics.AP(res.Detections, oracle, world.ClassCar, metrics.DefaultIoU)
		ped := metrics.AP(res.Detections, oracle, world.ClassPedestrian, metrics.DefaultIoU)
		lat := metrics.SummarizeLatency(res.ResponseTimes)
		dur := float64(clip.NumFrames()) / clip.FPS
		fmt.Printf("%-6s  %6.3f  %6.3f  %6.3f  %7.1fms  %7.1fms  %8.2f\n",
			res.Scheme, (car+ped)/2, car, ped,
			lat.Mean*1000, lat.P95*1000, float64(res.TotalBits())/dur/1e6)
	}
	fmt.Println("\nDiVE holds the best accuracy at a single-trip response time;")
	fmt.Println("DDS pays two uplink trips per frame, EAAR tracks most frames locally.")
	return nil
}
