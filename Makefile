GO ?= go

.PHONY: all build test race vet bench bench-obs bench-compare bench-smoke bench-baseline bench-alloc alloc-baseline chaos-smoke cluster-smoke doctor-live fleet-smoke fuzz-smoke clean

all: build vet test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-detector pass over the concurrency-bearing packages. core and sim
# carry the frame-pipeline determinism tests (serial vs pipelined
# byte-identity at depths 1-3), so this also proves the overlap is clean.
race:
	$(GO) test -race ./internal/obs/... ./internal/netsim/... ./internal/edge/... ./internal/chaos/... ./internal/cluster/... ./internal/baselines/... ./internal/parallel/... ./internal/codec/... ./internal/world/... ./internal/core/... ./internal/sim/...

vet:
	$(GO) vet ./...

# Full benchmark sweep (the per-figure benches in bench_test.go are slow).
bench:
	$(GO) test -run xxx -bench . -benchtime 1x ./...

# Telemetry overhead benchmarks: the disabled span must stay <5 ns/op.
bench-obs:
	$(GO) test -run xxx -bench . -benchtime 2s ./internal/obs/

# Serial-vs-parallel comparison of the hot kernels: the GOMAXPROCS-sized
# pools degrade to the serial path at -cpu 1, so the two columns compare
# identical output at width 1 and width 4.
bench-compare:
	$(GO) test -run xxx -bench 'EncodeParallel|AnalyzeMotionParallel|RenderParallel' -benchmem -cpu 1,4 ./internal/codec/ ./internal/world/

# Smoke benchmark + automated diagnosis (the CI bench-smoke job): run the
# tiny end-to-end experiment with telemetry, export a healthy-run decision
# journal, and have divedoctor check both — journal pathologies and stage
# latencies against the committed baseline. Exit 1 on any finding.
# The journal is exported from a pipelined run (-pipeline-depth 3): the
# records are defined to be identical to serial, so doctor findings double
# as a pipeline-determinism gate.
bench-smoke:
	$(GO) run ./cmd/divebench -scale smoke -only f16 -speedup=false -telemetry -json bench_smoke.json
	$(GO) run ./cmd/divetrace -format journal -duration 2 -pipeline-depth 3 -o smoke.journal.jsonl
	$(GO) run ./cmd/divedoctor -journal smoke.journal.jsonl -bench bench_smoke.json -baseline ci/bench_baseline.json -json
	$(GO) run ./cmd/divebench -scale smoke -only none -speedup=false -pipeline-depth 0 -streams 4 -streams-secs 2 -runtime-log streams_runtime.jsonl -json streams_smoke.json
	$(GO) run ./cmd/divedoctor -runtime streams_runtime.jsonl -json

# Allocation gate (the CI bench-alloc job): run the steady-state encode
# benchmarks with -benchmem and fail if allocs/op or B/op regressed past the
# committed ci/alloc_baseline.json. The pooled path is pinned at 0 allocs/op;
# allocation counts are deterministic after warm-up, so this gate is
# machine-independent (unlike wall-clock latency baselines).
bench-alloc:
	$(GO) test -run xxx -bench 'EncodeSteadyState' -benchtime 20x -benchmem ./internal/codec/ | tee bench_alloc.txt
	$(GO) run ./cmd/divedoctor -alloc bench_alloc.txt -alloc-baseline ci/alloc_baseline.json -json

# Regenerate the committed allocation baseline after an intentional change to
# the steady-state encode path, then commit ci/alloc_baseline.json.
alloc-baseline:
	$(GO) test -run xxx -bench 'EncodeSteadyState' -benchtime 20x -benchmem ./internal/codec/ | tee bench_alloc.txt
	$(GO) run ./cmd/divedoctor -alloc bench_alloc.txt -write-alloc-baseline ci/alloc_baseline.json

# Regenerate the committed latency baseline from a fresh smoke run. Run on
# the reference machine after intentional performance changes, then commit
# ci/bench_baseline.json.
bench-baseline:
	$(GO) run ./cmd/divebench -scale smoke -only f16 -speedup=false -telemetry -json bench_smoke.json
	$(GO) run ./cmd/divedoctor -bench bench_smoke.json -write-baseline ci/bench_baseline.json

# Chaos smoke (the CI chaos-smoke job): the seeded fault-injection suite
# under -race — scripted scenario traces through the simulator, the
# proxy/conn wrapper's own tests, and the live client↔server runs under
# disconnects, corruption and blackouts — then a divedoctor gate proving the
# recovery detectors (reconnect-storm, slow-recovery) stay silent on a
# healthy-run journal.
chaos-smoke: doctor-live
	$(GO) test -race ./internal/chaos/...
	$(GO) test -race -run 'Chaos' ./internal/sim/
	$(GO) test -race -run 'TestClient|TestServer|TestGraceful' ./internal/edge/
	$(GO) run ./cmd/divetrace -format journal -duration 2 -o smoke.journal.jsonl
	$(GO) run ./cmd/divedoctor -journal smoke.journal.jsonl

# Cluster failover smoke (part of the CI chaos-smoke job): the balancer,
# membership and kill-mid-clip tests under -race, then the end-to-end
# kill-a-server drill in ci/cluster_smoke.sh — a seed-chosen member of a
# 3-member cluster dies at half-clip and divedoctor must grade exactly one
# bounded migration-gap (warn) and zero failover-storm findings from the
# exported session journals.
cluster-smoke:
	$(GO) test -race ./internal/cluster/
	ci/cluster_smoke.sh

# Live-observability smoke: a paced chaos run served over HTTP, tailed by
# divedoctor -follow, asserting outage findings stream as JSONL while the
# run is still going (see ci/doctor_live.sh).
doctor-live:
	ci/doctor_live.sh

# Fleet smoke (the CI fleet-smoke job): the fleet simulator and aggregation
# plane under -race, then the end-to-end gates in ci/fleet_smoke.sh — seeded
# model runs must be byte-identical, a scripted slow link must stream a
# straggler-session finding out of a live /debug/fleet endpoint, and the
# healthy fleet must diagnose clean.
fleet-smoke:
	$(GO) test -race ./internal/fleet/ ./internal/obs/ ./internal/doctor/
	ci/fleet_smoke.sh

# Native fuzzing smoke over the edge wire decoders. Go allows exactly one
# -fuzz pattern per invocation, so each target gets its own short run.
fuzz-smoke:
	$(GO) test -fuzz=FuzzHello -fuzztime=10s -run 'xxx' ./internal/edge/
	$(GO) test -fuzz=FuzzFrameMsg -fuzztime=10s -run 'xxx' ./internal/edge/
	$(GO) test -fuzz=FuzzResultMsg -fuzztime=10s -run 'xxx' ./internal/edge/
	$(GO) test -fuzz=FuzzMsgReader -fuzztime=10s -run 'xxx' ./internal/edge/
	$(GO) test -fuzz=FuzzRedirectMsg -fuzztime=10s -run 'xxx' ./internal/edge/

clean:
	$(GO) clean ./...
	rm -f bench_results.json bench_smoke.json smoke.journal.jsonl bench_alloc.txt streams_smoke.json streams_runtime.jsonl
