GO ?= go

.PHONY: all build test race vet bench bench-obs bench-compare clean

all: build vet test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-detector pass over the concurrency-bearing packages.
race:
	$(GO) test -race ./internal/obs/... ./internal/netsim/... ./internal/edge/... ./internal/baselines/... ./internal/parallel/... ./internal/codec/... ./internal/world/...

vet:
	$(GO) vet ./...

# Full benchmark sweep (the per-figure benches in bench_test.go are slow).
bench:
	$(GO) test -run xxx -bench . -benchtime 1x ./...

# Telemetry overhead benchmarks: the disabled span must stay <5 ns/op.
bench-obs:
	$(GO) test -run xxx -bench . -benchtime 2s ./internal/obs/

# Serial-vs-parallel comparison of the hot kernels: the GOMAXPROCS-sized
# pools degrade to the serial path at -cpu 1, so the two columns compare
# identical output at width 1 and width 4.
bench-compare:
	$(GO) test -run xxx -bench 'EncodeParallel|AnalyzeMotionParallel|RenderParallel' -benchmem -cpu 1,4 ./internal/codec/ ./internal/world/

clean:
	$(GO) clean ./...
	rm -f bench_results.json
