GO ?= go

.PHONY: all build test race vet bench bench-obs clean

all: build vet test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-detector pass over the concurrency-bearing packages.
race:
	$(GO) test -race ./internal/obs/... ./internal/netsim/... ./internal/edge/... ./internal/baselines/...

vet:
	$(GO) vet ./...

# Full benchmark sweep (the per-figure benches in bench_test.go are slow).
bench:
	$(GO) test -run xxx -bench . -benchtime 1x ./...

# Telemetry overhead benchmarks: the disabled span must stay <5 ns/op.
bench-obs:
	$(GO) test -run xxx -bench . -benchtime 2s ./internal/obs/

clean:
	$(GO) clean ./...
	rm -f bench_results.json
